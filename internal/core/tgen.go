package core

import (
	"fmt"
	"math"
	"sort"
)

// EdgeOrder selects the order in which TGEN processes edges. §5 discusses
// alternatives: "We can process the edges in other orders (e.g., the edges
// can be processed in ascending order of their lengths). However, ... the
// accuracy only varies slightly while the order we adopt yields better
// efficiency."
type EdgeOrder int

const (
	// OrderBFS visits nodes breadth-first and processes each node's
	// unvisited incident edges (the paper's choice: no sorting cost, and
	// finished nodes drop their tuple arrays).
	OrderBFS EdgeOrder = iota
	// OrderAscLength processes all edges in ascending length order
	// (the alternative §5 mentions; used by the ablation benchmarks).
	OrderAscLength
)

// TGENOptions configures the tuple-generation heuristic of §5.
type TGENOptions struct {
	// Alpha is the scaling parameter. TGEN needs a much coarser scale
	// than APP — the paper tunes α = 400 on NY and α = 300 on USANW so
	// that tuples collide on few scaled-weight values. Zero selects 400.
	Alpha float64
	// Order picks the edge processing order (default OrderBFS).
	Order EdgeOrder
}

func (o TGENOptions) withDefaults() TGENOptions {
	if o.Alpha == 0 {
		o.Alpha = 400
	}
	return o
}

// TGEN answers an LCMSR query with Algorithm 2: it scales node weights,
// visits nodes in breadth-first order, processes every edge exactly once,
// and combines the explored region tuple arrays (Definition 6) of the
// edge's endpoints to enumerate feasible regions, keeping per node and
// scaled weight only the shortest region. Nodes whose incident edges have
// all been processed drop their arrays (§5's memory optimization). A nil
// region with nil error means no relevant node exists.
func TGEN(in *Instance, delta float64, opts TGENOptions) (*Region, error) {
	opts = opts.withDefaults()
	if delta < 0 || math.IsNaN(delta) {
		return nil, fmt.Errorf("core: invalid length constraint %v", delta)
	}
	sc, err := Scale(in, opts.Alpha)
	if err != nil {
		if in.NumNodes > 0 {
			return nil, nil
		}
		return nil, err
	}

	arrays := make([]tupleArray, in.NumNodes)
	var best *Region
	// bestR is tracked on the original weights: the tuple arrays must be
	// keyed by scaled weight (Definition 6), but among enumerated feasible
	// regions the answer reported to the user is the truly heaviest one —
	// scaled-weight ties would otherwise pick an arbitrary lighter region.
	consider := func(r *Region) {
		if r.betterScore(best) {
			best = r
		}
	}
	for v := 0; v < in.NumNodes; v++ {
		arrays[v] = make(tupleArray)
		s := singleton(in, sc, NodeID(v))
		arrays[v].update(s)
		consider(s)
	}

	if opts.Order == OrderAscLength {
		tgenAscLength(in, sc, delta, arrays, consider)
		return best, nil
	}

	processed := make([]bool, in.NumNodes)
	enqueued := make([]bool, in.NumNodes)
	edgeDone := make([]bool, len(in.Edges))
	queue := make([]int32, 0, 64)

	for v0 := 0; v0 < in.NumNodes; v0++ {
		if processed[v0] || enqueued[v0] {
			continue
		}
		queue = append(queue[:0], int32(v0))
		enqueued[v0] = true
		for len(queue) > 0 {
			vi := queue[0]
			queue = queue[1:]
			for _, he := range in.Neighbors(vi) {
				if edgeDone[he.Edge] {
					continue
				}
				edgeDone[he.Edge] = true
				vj := he.To
				// Line 8: edges longer than the budget can never appear
				// in a feasible region.
				if in.Edges[he.Edge].Length > delta {
					continue
				}
				if !enqueued[vj] {
					enqueued[vj] = true
					queue = append(queue, vj)
				}
				// Combine every explored region containing vi with every
				// explored region containing vj through this edge.
				viArr, vjArr := arrays[vi], arrays[vj]
				newTuples := make([]*Region, 0, 8)
				for _, t1 := range viArr {
					for _, t2 := range vjArr {
						if t1.sharesNode(t2) {
							continue // Lemma 9: would close a cycle
						}
						nr := combine(in, t1, t2, he.Edge)
						if nr.Length > delta {
							continue
						}
						newTuples = append(newTuples, nr)
					}
				}
				for _, nr := range newTuples {
					consider(nr)
					for _, v := range nr.Nodes {
						if processed[v] {
							continue // discarded arrays stay discarded
						}
						arrays[v].update(nr)
					}
				}
			}
			processed[vi] = true
			arrays[vi] = nil // §5: drop the array once all edges are done
		}
	}
	return best, nil
}

// tgenAscLength is the OrderAscLength variant: identical tuple generation,
// but edges are processed globally in ascending length order. A node's
// array is discarded once all its incident edges are done.
func tgenAscLength(in *Instance, sc *Scaling, delta float64, arrays []tupleArray, consider func(*Region)) {
	order := make([]int32, len(in.Edges))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return in.Edges[order[i]].Length < in.Edges[order[j]].Length
	})
	remaining := make([]int, in.NumNodes)
	for _, e := range in.Edges {
		remaining[e.U]++
		remaining[e.V]++
	}
	finish := func(v int32) {
		remaining[v]--
		if remaining[v] == 0 {
			arrays[v] = nil
		}
	}
	for _, ei := range order {
		e := in.Edges[ei]
		if e.Length > delta {
			finish(e.U)
			finish(e.V)
			continue
		}
		viArr, vjArr := arrays[e.U], arrays[e.V]
		var newTuples []*Region
		for _, t1 := range viArr {
			for _, t2 := range vjArr {
				if t1.sharesNode(t2) {
					continue
				}
				nr := combine(in, t1, t2, ei)
				if nr.Length > delta {
					continue
				}
				newTuples = append(newTuples, nr)
			}
		}
		finish(e.U)
		finish(e.V)
		for _, nr := range newTuples {
			consider(nr)
			for _, v := range nr.Nodes {
				if arrays[v] != nil {
					arrays[v].update(nr)
				}
			}
		}
	}
}
