package core

import (
	"fmt"

	"repro/internal/container"
)

// Exact computes the true optimal region by exhaustive enumeration of node
// subsets: a region's score depends only on its node set, and a connected
// node set S is feasible iff the minimum spanning tree of the induced
// subgraph G[S] fits the budget (any connected subgraph on S is at least
// as long as that MST). Exponential in the node count — it exists to
// ground-truth the approximation algorithms on small instances (tests and
// the accuracy benchmarks) and refuses instances above 22 nodes.
func Exact(in *Instance, delta float64) (*Region, error) {
	const limit = 22
	if in.NumNodes > limit {
		return nil, fmt.Errorf("core: exact solver limited to %d nodes, got %d", limit, in.NumNodes)
	}
	n := in.NumNodes
	var best *Region
	for mask := 1; mask < 1<<n; mask++ {
		var score float64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				score += in.Weights[v]
			}
		}
		if best != nil && score < best.Score {
			continue // cannot beat the incumbent; skip the MST work
		}
		r, ok := mstRegion(in, mask)
		if !ok || r.Length > delta {
			continue
		}
		if best == nil || r.Score > best.Score || (r.Score == best.Score && r.Length < best.Length) {
			best = r
		}
	}
	return best, nil
}

// mstRegion builds the minimum spanning tree region of the induced
// subgraph over the mask's nodes; ok is false when it is disconnected.
func mstRegion(in *Instance, mask int) (*Region, bool) {
	var nodes []int32
	for v := 0; v < in.NumNodes; v++ {
		if mask&(1<<v) != 0 {
			nodes = append(nodes, int32(v))
		}
	}
	r := &Region{Nodes: nodes}
	for _, v := range nodes {
		r.Score += in.Weights[v]
	}
	if len(nodes) == 1 {
		return r, true
	}
	type we struct {
		idx int32
		len float64
	}
	var edges []we
	for i, e := range in.Edges {
		if mask&(1<<e.U) != 0 && mask&(1<<e.V) != 0 {
			edges = append(edges, we{int32(i), e.Length})
		}
	}
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].len < edges[j-1].len; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	uf := container.NewUnionFind(in.NumNodes)
	picked := 0
	for _, e := range edges {
		ed := in.Edges[e.idx]
		if uf.Union(int(ed.U), int(ed.V)) {
			r.Edges = append(r.Edges, e.idx)
			r.Length += e.len
			picked++
		}
	}
	return r, picked == len(nodes)-1
}
