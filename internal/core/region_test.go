package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCombineAdditive checks the tuple-combination rule of §5: lengths,
// scores and scaled weights add (plus the connecting edge's length), node
// sets merge sorted, and edge sets concatenate plus the connecting edge.
func TestCombineAdditive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		in := randomInstance(nil, rng, n)
		sc, err := Scale(in, 0.3)
		if err != nil {
			return true // all-zero instance; nothing to combine
		}
		// Two disjoint singletons joined by an edge between them, when
		// such an edge exists.
		for _, e := range in.Edges {
			r1 := singleton(in, sc, e.U)
			r2 := singleton(in, sc, e.V)
			idx := int32(0)
			for i, e2 := range in.Edges {
				if e2 == e {
					idx = int32(i)
					break
				}
			}
			out := combine(in, r1, r2, idx)
			if out.Length != r1.Length+r2.Length+e.Length {
				return false
			}
			if out.Score != r1.Score+r2.Score || out.Scaled != r1.Scaled+r2.Scaled {
				return false
			}
			if len(out.Nodes) != 2 || len(out.Edges) != 1 {
				return false
			}
			if out.Nodes[0] > out.Nodes[1] {
				return false // must stay sorted
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortedProperty(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		// Build disjoint sorted slices: evens from a, odds from b.
		var a, b []int32
		for _, x := range aRaw {
			a = append(a, int32(x)*2)
		}
		for _, x := range bRaw {
			b = append(b, int32(x)*2+1)
		}
		sortInt32(a)
		sortInt32(b)
		a, b = dedup32(a), dedup32(b)
		m := mergeSorted(a, b)
		if len(m) != len(a)+len(b) {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i-1] >= m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func dedup32(xs []int32) []int32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// TestTupleArrayDominance checks Definition 5/6 semantics: update keeps,
// per scaled weight, exactly the minimum-length region seen.
func TestTupleArrayDominance(t *testing.T) {
	ta := make(tupleArray)
	a := &Region{Scaled: 5, Length: 10}
	b := &Region{Scaled: 5, Length: 7}
	c := &Region{Scaled: 5, Length: 9}
	d := &Region{Scaled: 3, Length: 100}
	if !ta.update(a) {
		t.Error("first insert must report change")
	}
	if !ta.update(b) {
		t.Error("shorter region must replace")
	}
	if ta.update(c) {
		t.Error("longer region must not replace")
	}
	if !ta.update(d) {
		t.Error("new weight must insert")
	}
	if ta[5] != b || ta[3] != d {
		t.Error("array contents wrong")
	}
}

// TestSharesNodeSymmetric: sharesNode must be symmetric and agree with a
// naive set intersection.
func TestSharesNodeSymmetric(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		var a, b []int32
		for _, x := range aRaw {
			a = append(a, int32(x))
		}
		for _, x := range bRaw {
			b = append(b, int32(x))
		}
		sortInt32(a)
		sortInt32(b)
		a, b = dedup32(a), dedup32(b)
		ra := &Region{Nodes: a}
		rb := &Region{Nodes: b}
		naive := false
		set := map[int32]bool{}
		for _, x := range a {
			set[x] = true
		}
		for _, x := range b {
			if set[x] {
				naive = true
			}
		}
		return ra.sharesNode(rb) == naive && rb.sharesNode(ra) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
