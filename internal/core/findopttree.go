package core

import "sort"

// findOptTree is the pseudo-polynomial dynamic program of §4.2.3: given a
// candidate tree TC (nodes and edge indices of the instance), it finds the
// feasible region (length ≤ delta) with the largest scaled weight that is
// a subtree of TC. Each tree node carries a region tuple array
// (Definition 5) holding, per scaled weight, the minimum-length region
// rooted at it; leaves are peeled one by one and their arrays folded into
// their remaining neighbour exactly as Function findOptTree() does
// (Lemma 7). Regions longer than delta are pruned eagerly: extending a
// region never shortens it, so infeasible tuples cannot contribute.
//
// When keepArrays is non-nil, the surviving tuple arrays of every peeled
// node are appended to it (used by the top-k extension, §6.2).
func findOptTree(in *Instance, sc *Scaling, treeNodes []int32, treeEdges []int32, delta float64, keepArrays *[]*Region) *Region {
	if len(treeNodes) == 0 {
		return nil
	}
	// Local adjacency of the tree.
	adj := make(map[int32][]Halfedge, len(treeNodes))
	deg := make(map[int32]int, len(treeNodes))
	for _, ei := range treeEdges {
		e := in.Edges[ei]
		adj[e.U] = append(adj[e.U], Halfedge{To: e.V, Edge: ei})
		adj[e.V] = append(adj[e.V], Halfedge{To: e.U, Edge: ei})
		deg[e.U]++
		deg[e.V]++
	}

	arrays := make(map[int32]tupleArray, len(treeNodes))
	var best *Region
	// As in TGEN, the reported best region uses original weights; the
	// arrays themselves stay keyed by scaled weight (Definition 5).
	consider := func(r *Region) {
		if r.Length <= delta && r.betterScore(best) {
			best = r
		}
	}
	for _, v := range treeNodes {
		ta := make(tupleArray)
		s := singleton(in, sc, v)
		ta.update(s)
		arrays[v] = ta
		consider(s)
	}

	// Leaf-peeling queue (paper's nodeQ): nodes with one remaining
	// neighbour; a single-node tree is already handled by the singletons.
	removed := make(map[int32]bool, len(treeNodes))
	var queue []int32
	for _, v := range treeNodes {
		if deg[v] == 1 {
			queue = append(queue, v)
		}
	}
	remaining := len(treeNodes)
	for len(queue) > 0 && remaining > 1 {
		v := queue[0]
		queue = queue[1:]
		if removed[v] {
			continue
		}
		// v's single remaining neighbour vn (the parent, per Lemma 6).
		var vn int32 = -1
		var edgeIdx int32
		for _, he := range adj[v] {
			if !removed[he.To] {
				vn, edgeIdx = he.To, he.Edge
				break
			}
		}
		if vn < 0 {
			break // isolated remnant; defensive
		}
		// Fold v's array into vn's (Lemma 7): every region rooted at vn
		// (including the {vn} singleton) combines with every region
		// rooted at v through the connecting edge.
		vArr, vnArr := arrays[v], arrays[vn]
		// Materialize vn's current tuples first so newly added ones are
		// not combined with vArr again (they already contain v's side).
		current := make([]*Region, 0, len(vnArr))
		for _, t1 := range vnArr {
			current = append(current, t1)
		}
		for _, t2 := range vArr {
			for _, t1 := range current {
				nr := combine(in, t1, t2, edgeIdx)
				if nr.Length > delta {
					continue
				}
				if vnArr.update(nr) {
					consider(nr)
				}
			}
		}
		if keepArrays != nil {
			for _, t := range vArr {
				*keepArrays = append(*keepArrays, t)
			}
		}
		removed[v] = true
		delete(arrays, v)
		remaining--
		deg[vn]--
		if deg[vn] == 1 {
			queue = append(queue, vn)
		}
	}
	if keepArrays != nil {
		// Remaining (root) arrays.
		var roots []int32
		for v := range arrays {
			roots = append(roots, v)
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
		for _, v := range roots {
			for _, t := range arrays[v] {
				*keepArrays = append(*keepArrays, t)
			}
		}
	}
	return best
}
