package core

import (
	"fmt"
	"math"

	"repro/internal/cancel"
)

// GreedyOptions configures the greedy expansion of §6.1.
type GreedyOptions struct {
	// Mu balances edge length (µ) against node weight (1−µ) in the
	// ranking score ρ(vi) = µ(1 − τ(vi,vj)/τmax) + (1−µ)σvi/σmax.
	// The paper tunes µ = 0.2 on NY and µ = 0.4 on USANW. Negative
	// values are rejected; the zero value selects 0.2.
	Mu float64
	// MuSet forces Mu to be used as-is, allowing an explicit µ = 0
	// (weight-only selection, one of the ablation endpoints).
	MuSet bool
}

func (o GreedyOptions) withDefaults() (GreedyOptions, error) {
	if !o.MuSet && o.Mu == 0 {
		o.Mu = 0.2
	}
	if o.Mu < 0 || o.Mu > 1 || math.IsNaN(o.Mu) {
		return o, fmt.Errorf("core: µ must be in [0,1], got %v", o.Mu)
	}
	return o, nil
}

// Greedy answers an LCMSR query with the method of §6.1: seed the region
// at the most relevant node in Q.Λ, then repeatedly attach the frontier
// node with the best combined score whose connecting edge still fits the
// remaining budget, stopping when no frontier node fits. A nil region with
// nil error means no relevant node exists.
func Greedy(in *Instance, delta float64, opts GreedyOptions) (*Region, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if delta < 0 || math.IsNaN(delta) {
		return nil, fmt.Errorf("core: invalid length constraint %v", delta)
	}
	sigmaMax, seed := in.MaxWeight()
	if seed < 0 {
		return nil, nil
	}
	banned := make([]bool, in.NumNodes)
	var inRegion stampSet
	return greedyFrom(in, delta, opts.Mu, sigmaMax, seed, banned, &inRegion, &Region{}, nil), nil
}

// greedyFrom grows one region from the given seed into r, reusing r's
// Nodes/Edges as backing buffers (callers pass a fresh or pooled Region).
// Membership is tracked in the caller's epoch-stamped inRegion set — the
// former map[NodeID]bool — which greedyFrom re-begins; tie-breaking is
// unchanged because the set is only probed, never iterated. Nodes marked
// banned are never added (used by the top-k extension to keep regions
// disjoint). A non-nil chk is polled in the frontier scan; once it fires
// the partially-grown region is returned and the caller surfaces
// chk.Err() (SolveGreedy discards the partial region).
func greedyFrom(in *Instance, delta float64, mu, sigmaMax float64, seed NodeID, banned []bool, inRegion *stampSet, r *Region, chk *cancel.Check) *Region {
	tauMax := in.MaxEdgeLength()
	inRegion.begin(in.NumNodes)
	inRegion.add(seed)
	*r = Region{Score: in.Weights[seed], Nodes: append(r.Nodes[:0], seed), Edges: r.Edges[:0]}

	for {
		// Scan the frontier: nodes adjacent to the region, not banned,
		// whose best connecting edge fits the remaining budget.
		bestScore := math.Inf(-1)
		var bestNode NodeID = -1
		var bestEdge int32 = -1
		remaining := delta - r.Length
		// Iterate the region's sorted node list, not the membership set:
		// iterating an unordered structure would break the engine's
		// guarantee of identical results across runs when scores tie.
		for _, v := range r.Nodes {
			if chk.Tick() {
				return r
			}
			for _, he := range in.Neighbors(NodeID(v)) {
				to := he.To
				if inRegion.has(to) || banned[to] {
					continue
				}
				tau := in.Edges[he.Edge].Length
				if tau > remaining {
					continue
				}
				var lenTerm float64
				if tauMax > 0 {
					lenTerm = 1 - tau/tauMax
				}
				var wTerm float64
				if sigmaMax > 0 {
					wTerm = in.Weights[to] / sigmaMax
				}
				score := mu*lenTerm + (1-mu)*wTerm
				if score > bestScore ||
					(score == bestScore && (to < bestNode ||
						(to == bestNode && he.Edge < bestEdge))) {
					bestScore, bestNode, bestEdge = score, to, he.Edge
				}
			}
		}
		if bestNode < 0 {
			return r
		}
		inRegion.add(bestNode)
		r.Nodes = insertSorted(r.Nodes, bestNode)
		r.Edges = append(r.Edges, bestEdge)
		r.Length += in.Edges[bestEdge].Length
		r.Score += in.Weights[bestNode]
	}
}

func insertSorted(xs []int32, v int32) []int32 {
	i := 0
	for i < len(xs) && xs[i] < v {
		i++
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}
