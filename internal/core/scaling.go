package core

import (
	"fmt"
	"math"
)

// Scaling is the node-weight scaling of §4.1: θ = α·σmax/|VQ| and
// σ̂v = ⌊σv/θ⌋. Theorem 2 guarantees that the best region under scaled
// weights has original weight at least (1−α) times the optimum.
type Scaling struct {
	Alpha  float64
	Theta  float64
	Scaled []int64 // σ̂v per node
	MaxHat int64   // σ̂max = max scaled weight
	SumHat int64   // Σ σ̂v, an upper bound on any region's scaled weight
}

// Scale computes the scaled graph GS for an instance. α must be positive;
// the paper uses α ∈ [0.01, 0.9] for APP and large values (50–1600) for
// TGEN, where coarse scaling collapses more tuples per weight value.
// An error is returned when the instance has no relevant node (σmax = 0),
// in which case no meaningful region exists.
func Scale(in *Instance, alpha float64) (*Scaling, error) {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("core: scaling parameter α must be positive, got %v", alpha)
	}
	if in.NumNodes == 0 {
		return nil, fmt.Errorf("core: cannot scale an empty instance")
	}
	sigmaMax, _ := in.MaxWeight()
	if sigmaMax <= 0 {
		return nil, fmt.Errorf("core: no node is relevant to the query (σmax = 0)")
	}
	theta := alpha * sigmaMax / float64(in.NumNodes)
	s := &Scaling{Alpha: alpha, Theta: theta, Scaled: make([]int64, in.NumNodes)}
	for v, w := range in.Weights {
		hat := int64(math.Floor(w / theta))
		s.Scaled[v] = hat
		if hat > s.MaxHat {
			s.MaxHat = hat
		}
		s.SumHat += hat
	}
	return s, nil
}
