package core

import (
	"fmt"
	"math"
)

// Scaling is the node-weight scaling of §4.1: θ = α·σmax/|VQ| and
// σ̂v = ⌊σv/θ⌋. Theorem 2 guarantees that the best region under scaled
// weights has original weight at least (1−α) times the optimum.
type Scaling struct {
	Alpha  float64
	Theta  float64
	Scaled []int64 // σ̂v per node
	MaxHat int64   // σ̂max = max scaled weight
	SumHat int64   // Σ σ̂v, an upper bound on any region's scaled weight
}

// Scale computes the scaled graph GS for an instance. α must be positive;
// the paper uses α ∈ [0.01, 0.9] for APP and large values (50–1600) for
// TGEN, where coarse scaling collapses more tuples per weight value.
// An error is returned when the instance has no relevant node (σmax = 0),
// in which case no meaningful region exists.
func Scale(in *Instance, alpha float64) (*Scaling, error) {
	s := &Scaling{}
	if err := ScaleInto(in, alpha, s); err != nil {
		return nil, err
	}
	return s, nil
}

// ScaleInto is Scale into caller-owned storage: sc's Scaled slice is
// reused when large enough, so a pooled Scaling scales a new instance with
// zero steady-state allocations. The semantics and error cases are exactly
// Scale's.
func ScaleInto(in *Instance, alpha float64, sc *Scaling) error {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return fmt.Errorf("core: scaling parameter α must be positive, got %v", alpha)
	}
	if in.NumNodes == 0 {
		return fmt.Errorf("core: cannot scale an empty instance")
	}
	sigmaMax, _ := in.MaxWeight()
	if sigmaMax <= 0 {
		return fmt.Errorf("core: no node is relevant to the query (σmax = 0)")
	}
	theta := alpha * sigmaMax / float64(in.NumNodes)
	sc.Alpha, sc.Theta = alpha, theta
	sc.MaxHat, sc.SumHat = 0, 0
	sc.Scaled = growTo(sc.Scaled, in.NumNodes)
	for v, w := range in.Weights {
		hat := int64(math.Floor(w / theta))
		sc.Scaled[v] = hat
		if hat > sc.MaxHat {
			sc.MaxHat = hat
		}
		sc.SumHat += hat
	}
	return nil
}
