package core

import (
	"fmt"
	"math"

	"repro/internal/cancel"
	"repro/internal/kmst"
)

// SolverKind selects the quota-tree solver APP's binary search drives.
type SolverKind int

const (
	// SolverGarg is the GW-based Garg-style solver (the paper's choice).
	SolverGarg SolverKind = iota
	// SolverSPT is the cheap shortest-path-tree heuristic (ablation).
	SolverSPT
)

// APPOptions configures the approximation algorithm of §4.
type APPOptions struct {
	// Alpha is the node-weight scaling parameter α (paper default 0.5 on
	// NY, 0.1 on USANW). Zero selects 0.5.
	Alpha float64
	// Beta is the binary-search slack β (paper default 0.1). Zero selects 0.1.
	Beta float64
	// Solver picks the quota-tree solver (default SolverGarg).
	Solver SolverKind
	// Trace, when non-nil, receives one entry per binary-search step —
	// the columns of Table 1.
	Trace *[]TraceStep
}

// TraceStep is one row of the binary search illustration (Table 1).
type TraceStep struct {
	L, U, X float64
	TCLen   float64 // length of kMST(X); +Inf when infeasible
	X2      float64 // (1+β)X, 0 when not probed
	TC2Len  float64 // length of kMST((1+β)X); +Inf when infeasible
}

func (o APPOptions) withDefaults() APPOptions {
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Beta == 0 {
		o.Beta = 0.1
	}
	return o
}

// APP answers an LCMSR query on the working instance with length budget
// delta, following Algorithm 1: scale weights (§4.1), binary-search a
// node-weight quota against the k-MST solver until the candidate tree TC
// satisfies Lemma 4, then extract the best feasible subtree of TC with the
// findOptTree dynamic program. The result carries the original weights; a
// nil region (with nil error) means no node in the instance is relevant.
func APP(in *Instance, delta float64, opts APPOptions) (*Region, error) {
	opts = opts.withDefaults()
	if delta < 0 || math.IsNaN(delta) {
		return nil, fmt.Errorf("core: invalid length constraint %v", delta)
	}
	sc, err := Scale(in, opts.Alpha)
	if err != nil {
		if in.NumNodes > 0 {
			// No relevant node: the query has an empty answer, not an error.
			return nil, nil
		}
		return nil, err
	}
	qg, err := kmst.New(in.NumNodes, in.pcstEdges(), sc.Scaled)
	if err != nil {
		return nil, err
	}
	var solver kmst.Solver
	switch opts.Solver {
	case SolverSPT:
		solver = kmst.NewSPT(qg, 8)
	default:
		solver = kmst.NewGarg(qg)
	}

	tc, ok, err := binarySearch(sc, solver, delta, opts.Beta, opts.Trace, nil)
	if err != nil {
		return nil, err
	}
	_, argmax := in.MaxWeight()
	fallback := singleton(in, sc, argmax)
	if !ok {
		// Even the lightest quota produced nothing useful; answer with the
		// single most relevant node, which is always feasible (length 0).
		return fallback, nil
	}

	// Algorithm 1, line 3: a candidate tree already within the budget is
	// returned as-is; otherwise extract the best subtree by DP.
	if tc.Length < delta {
		r := resultFromTree(in, sc, tc)
		if fallback.betterScore(r) {
			r = fallback
		}
		return r, nil
	}
	best := findOptTree(in, sc, tc.Nodes, toInt32(tc.Edges), delta, nil)
	if fallback.betterScore(best) {
		best = fallback
	}
	return best, nil
}

// binarySearch is Function binarySearch() of §4.2.2: find a quota X whose
// tree TC has length ≤ 3Q.∆ while the tree under (1+β)X is longer than
// 3Q.∆ (Lemma 4). Lemma 5 provides the bounds: L = σ̂max (the best region
// weighs at least the best single node) and U = Σσ̂ (it cannot exceed the
// region's total). Infeasible quotas behave as length +∞. A non-nil chk
// aborts the search between quota probes once cancellation is observed;
// the caller surfaces chk.Err(). A solver error aborts the search — the
// query fails typed instead of the solver panicking the process.
func binarySearch(sc *Scaling, solver kmst.Solver, delta, beta float64, trace *[]TraceStep, chk *cancel.Check) (kmst.Result, bool, error) {
	lo := float64(sc.MaxHat)
	hi := float64(sc.SumHat)
	var have kmst.Result
	found := false

	solve := func(x float64) (kmst.Result, float64, error) {
		q := int64(math.Ceil(x))
		if q < 1 {
			q = 1
		}
		r, ok, err := solver.Tree(q)
		if err != nil {
			return kmst.Result{}, math.Inf(1), err
		}
		if !ok {
			return kmst.Result{}, math.Inf(1), nil
		}
		return r, r.Length, nil
	}

	// The search interval is over integers once quotas are ceiled, so
	// log2(U-L) iterations suffice; the cap also guards degenerate floats.
	for iter := 0; iter < 64 && hi-lo >= 1; iter++ {
		if chk.Now() {
			return kmst.Result{}, false, nil
		}
		x := (lo + hi) / 2
		tc, lenTC, err := solve(x)
		if err != nil {
			return kmst.Result{}, false, err
		}
		step := TraceStep{L: lo, U: hi, X: x, TCLen: lenTC}
		if lenTC > 3*delta {
			hi = x
			if trace != nil {
				*trace = append(*trace, step)
			}
			continue
		}
		// TC is acceptable; remember the best (heaviest) one seen.
		if !found || tc.Weight > have.Weight || (tc.Weight == have.Weight && tc.Length < have.Length) {
			have = tc
			found = true
		}
		x2 := (1 + beta) * x
		tc2, lenTC2, err := solve(x2)
		if err != nil {
			return kmst.Result{}, false, err
		}
		step.X2, step.TC2Len = x2, lenTC2
		if trace != nil {
			*trace = append(*trace, step)
		}
		if lenTC2 > 3*delta {
			// Lemma 4 is satisfied: TC.ŝ > RSopt.ŝ/(1+β).
			return tc, true, nil
		}
		// (1+β)X is still feasible, so RSopt.ŝ ≥ (1+β)X: raise the floor.
		if tc2.Weight > have.Weight || (tc2.Weight == have.Weight && tc2.Length < have.Length) {
			have = tc2
		}
		lo = x
	}
	// Interval exhausted without triggering Lemma 4 (e.g. the whole region
	// graph fits in 3Q.∆). The heaviest feasible tree seen plays TC.
	if found {
		return have, true, nil
	}
	if chk.Now() {
		return kmst.Result{}, false, nil
	}
	// Try the lower bound itself (single heaviest node quota).
	tc, lenTC, err := solve(lo)
	if err != nil {
		return kmst.Result{}, false, err
	}
	if !math.IsInf(lenTC, 1) && lenTC <= 3*delta {
		return tc, true, nil
	}
	return kmst.Result{}, false, nil
}

// resultFromTree converts a quota-solver tree into a Region with exact
// weights.
func resultFromTree(in *Instance, sc *Scaling, t kmst.Result) *Region {
	r := &Region{
		Length: t.Length,
		Nodes:  append([]int32(nil), t.Nodes...),
		Edges:  toInt32(t.Edges),
	}
	for _, v := range t.Nodes {
		r.Score += in.Weights[v]
		r.Scaled += sc.Scaled[v]
	}
	return r
}

func toInt32(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}
