package core

import (
	"fmt"
	"sort"
)

// Region is the five-tuple of Definition 4: total length l, original
// weight s, scaled weight ŝ, node set V, and edge set E. A Region is
// always a connected subgraph of its Instance.
type Region struct {
	Length float64
	Score  float64 // s — Σ σv over Nodes
	Scaled int64   // ŝ — Σ σ̂v over Nodes
	Nodes  []int32 // sorted ascending
	Edges  []int32 // indices into Instance.Edges
}

// singleton returns the one-node region {v}.
func singleton(in *Instance, sc *Scaling, v NodeID) *Region {
	return &Region{
		Score:  in.Weights[v],
		Scaled: sc.Scaled[v],
		Nodes:  []int32{v},
	}
}

// betterThan reports whether r should replace o as the query answer:
// larger scaled weight wins; ties prefer the shorter region (§2: "In the
// rare case that there is more than one optimal region, we return the one
// with shortest length").
func (r *Region) betterThan(o *Region) bool {
	if o == nil {
		return r != nil
	}
	if r.Scaled != o.Scaled {
		return r.Scaled > o.Scaled
	}
	return r.Length < o.Length
}

// betterScore is betterThan on the original (unscaled) score; used when
// comparing results across algorithms with different scalings.
func (r *Region) betterScore(o *Region) bool {
	if o == nil {
		return r != nil
	}
	if r.Score != o.Score {
		return r.Score > o.Score
	}
	return r.Length < o.Length
}

// sharesNode reports whether the sorted node sets of r and o intersect
// (the Lemma 9 cycle test in TGEN).
func (r *Region) sharesNode(o *Region) bool {
	i, j := 0, 0
	for i < len(r.Nodes) && j < len(o.Nodes) {
		switch {
		case r.Nodes[i] < o.Nodes[j]:
			i++
		case r.Nodes[i] > o.Nodes[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// combine joins two node-disjoint regions through the edge with index
// edgeIdx, producing a new region per the tuple-generation rule of §5.
// The caller guarantees disjointness (Lemma 9) and that the edge connects
// a node of r to a node of o.
func combine(in *Instance, r, o *Region, edgeIdx int32) *Region {
	e := in.Edges[edgeIdx]
	out := &Region{
		Length: r.Length + o.Length + e.Length,
		Score:  r.Score + o.Score,
		Scaled: r.Scaled + o.Scaled,
		Nodes:  mergeSorted(r.Nodes, o.Nodes),
		Edges:  make([]int32, 0, len(r.Edges)+len(o.Edges)+1),
	}
	out.Edges = append(out.Edges, r.Edges...)
	out.Edges = append(out.Edges, o.Edges...)
	out.Edges = append(out.Edges, edgeIdx)
	return out
}

func mergeSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Contains reports whether node v belongs to the region.
func (r *Region) Contains(v NodeID) bool {
	i := sort.Search(len(r.Nodes), func(i int) bool { return r.Nodes[i] >= v })
	return i < len(r.Nodes) && r.Nodes[i] == v
}

// String implements fmt.Stringer.
func (r *Region) String() string {
	if r == nil {
		return "Region(nil)"
	}
	return fmt.Sprintf("Region{|V|=%d, |E|=%d, len=%.3f, score=%.4f}",
		len(r.Nodes), len(r.Edges), r.Length, r.Score)
}

// tupleArray is the region tuple array of Definitions 5/6: for each scaled
// weight value, the known feasible region with the smallest length. Sparse
// (map-backed) because achievable weight sums are sparse for small α.
type tupleArray map[int64]*Region

// update installs r if it beats the stored tuple at its scaled weight,
// returning true when the array changed.
func (ta tupleArray) update(r *Region) bool {
	cur, ok := ta[r.Scaled]
	if !ok || r.Length < cur.Length {
		ta[r.Scaled] = r
		return true
	}
	return false
}
