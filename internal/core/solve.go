package core

import (
	"context"
	"fmt"
	"math"
	"slices"

	"repro/internal/kmst"
	"repro/internal/pcst"
)

// This file holds the pooled solve entry points. SolveTGEN, SolveAPP, and
// SolveGreedy run the same algorithms as TGEN, APP, and Greedy and return
// bit-identical regions (golden-tested in solve_test.go), but draw every
// piece of per-query working state from the SolveScratch, so a warm
// scratch performs zero steady-state allocations per query. The returned
// *Region aliases the scratch and is valid only until the next SolveX call
// on the same scratch.
//
// Each SolveX honors ctx: the hot loops carry amortized cancellation
// checkpoints (internal/cancel), so a cancel observed mid-solve returns
// ctx.Err() within a bounded number of iterations. An abandoned solve
// leaves the scratch safe to reuse — the next solve starts from a full
// reset and produces results bit-identical to a fresh scratch. A
// background context makes every checkpoint free.

// SolveTGEN answers an LCMSR query with the tuple-generation heuristic of
// §5 (see TGEN) using pooled scratch state.
func SolveTGEN(ctx context.Context, s *SolveScratch, in *Instance, delta float64, opts TGENOptions) (*Region, error) {
	opts = opts.withDefaults()
	if delta < 0 || math.IsNaN(delta) {
		return nil, fmt.Errorf("core: invalid length constraint %v", delta)
	}
	s.begin(ctx)
	defer s.cancel.Release() // don't pin the caller's context between queries
	if s.cancel.Now() {
		return nil, s.cancel.Err()
	}
	if err := ScaleInto(in, opts.Alpha, &s.scaling); err != nil {
		if in.NumNodes > 0 {
			return nil, nil
		}
		return nil, err
	}

	n := in.NumNodes
	s.ensureArrays(n)
	for v := 0; v < n; v++ {
		sg := s.singleton(in, NodeID(v))
		s.update(int32(v), sg)
		s.considerScore(sg)
	}

	if opts.Order == OrderAscLength {
		s.tgenAscLength(in, delta)
		if s.cancel.Cancelled() {
			return nil, s.cancel.Err()
		}
		return s.bestRegion(), nil
	}

	s.processed.begin(n)
	s.enqueued.begin(n)
	s.edgeDone.begin(len(in.Edges))

	for v0 := 0; v0 < n; v0++ {
		if s.processed.has(int32(v0)) || s.enqueued.has(int32(v0)) {
			continue
		}
		queue := append(s.queue[:0], int32(v0))
		head := 0
		s.enqueued.add(int32(v0))
		for head < len(queue) {
			vi := queue[head]
			head++
			for _, he := range in.Neighbors(vi) {
				// Per-edge checkpoint: the combine loops below are bounded
				// by the tuple-array size (≈ σ̂max), so edge granularity
				// bounds the post-cancel work.
				if s.cancel.Tick() {
					return nil, s.cancel.Err()
				}
				if s.edgeDone.has(he.Edge) {
					continue
				}
				s.edgeDone.add(he.Edge)
				vj := he.To
				// Line 8: edges longer than the budget can never appear
				// in a feasible region.
				if in.Edges[he.Edge].Length > delta {
					continue
				}
				if !s.enqueued.has(vj) {
					s.enqueued.add(vj)
					queue = append(queue, vj)
				}
				// Combine every explored region containing vi with every
				// explored region containing vj through this edge.
				viArr, vjArr := s.arrays[vi], s.arrays[vj]
				newTuples := s.newTuples[:0]
				for _, t1 := range viArr {
					for _, t2 := range vjArr {
						if t1.r.sharesNode(&t2.r.Region) {
							continue // Lemma 9: would close a cycle
						}
						nr := s.combine(in, t1.r, t2.r, he.Edge)
						if nr.Length > delta {
							s.pool.free(nr)
							continue
						}
						newTuples = append(newTuples, nr)
					}
				}
				s.newTuples = newTuples
				for _, nr := range newTuples {
					s.considerScore(nr)
					for _, v := range nr.Nodes {
						if s.processed.has(v) {
							continue // discarded arrays stay discarded
						}
						s.update(v, nr)
					}
					if nr.refs == 0 {
						s.pool.free(nr) // stored nowhere and not the best
					}
				}
			}
			s.processed.add(vi)
			s.dropArray(vi) // §5: drop the array once all edges are done
		}
		s.queue = queue[:0]
	}
	return s.bestRegion(), nil
}

// tgenAscLength is tgenAscLength with pooled state: identical tuple
// generation over edges in ascending length order.
func (s *SolveScratch) tgenAscLength(in *Instance, delta float64) {
	s.order = growTo(s.order, len(in.Edges))
	for i := range s.order {
		s.order[i] = int32(i)
	}
	slices.SortFunc(s.order, func(a, b int32) int {
		// Same predicate as the allocating variant's sort.Slice; pdqsort
		// on equal input yields the same permutation for tied lengths.
		switch {
		case in.Edges[a].Length < in.Edges[b].Length:
			return -1
		case in.Edges[b].Length < in.Edges[a].Length:
			return 1
		default:
			return 0
		}
	})
	s.remaining = growTo(s.remaining, in.NumNodes)
	for i := range s.remaining {
		s.remaining[i] = 0
	}
	for _, e := range in.Edges {
		s.remaining[e.U]++
		s.remaining[e.V]++
	}
	finish := func(v int32) {
		s.remaining[v]--
		if s.remaining[v] == 0 {
			s.dropArray(v)
		}
	}
	for _, ei := range s.order {
		if s.cancel.Tick() {
			return // caller surfaces s.cancel.Err()
		}
		e := in.Edges[ei]
		if e.Length > delta {
			finish(e.U)
			finish(e.V)
			continue
		}
		viArr, vjArr := s.arrays[e.U], s.arrays[e.V]
		newTuples := s.newTuples[:0]
		for _, t1 := range viArr {
			for _, t2 := range vjArr {
				if t1.r.sharesNode(&t2.r.Region) {
					continue
				}
				nr := s.combine(in, t1.r, t2.r, ei)
				if nr.Length > delta {
					s.pool.free(nr)
					continue
				}
				newTuples = append(newTuples, nr)
			}
		}
		s.newTuples = newTuples
		finish(e.U)
		finish(e.V)
		for _, nr := range newTuples {
			s.considerScore(nr)
			for _, v := range nr.Nodes {
				if s.remaining[v] > 0 { // dropped arrays stay dropped
					s.update(v, nr)
				}
			}
			if nr.refs == 0 {
				s.pool.free(nr)
			}
		}
	}
}

// SolveGreedy answers an LCMSR query with the greedy expansion of §6.1
// (see Greedy) using pooled scratch state.
func SolveGreedy(ctx context.Context, s *SolveScratch, in *Instance, delta float64, opts GreedyOptions) (*Region, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if delta < 0 || math.IsNaN(delta) {
		return nil, fmt.Errorf("core: invalid length constraint %v", delta)
	}
	s.begin(ctx)
	defer s.cancel.Release() // don't pin the caller's context between queries
	if s.cancel.Now() {
		return nil, s.cancel.Err()
	}
	sigmaMax, seed := in.MaxWeight()
	if seed < 0 {
		return nil, nil
	}
	s.noBan = growTo(s.noBan, in.NumNodes) // never written: stays all-false
	// s.gRegion's Nodes/Edges keep their grown capacity across queries.
	r := greedyFrom(in, delta, opts.Mu, sigmaMax, seed, s.noBan, &s.inRegion, &s.gRegion, &s.cancel)
	if s.cancel.Cancelled() {
		return nil, s.cancel.Err()
	}
	return r, nil
}

// SolveAPP answers an LCMSR query with the (5+ε)-approximation of §4 (see
// APP) using pooled scratch state, including the pooled kmst/pcst solver
// stack.
func SolveAPP(ctx context.Context, s *SolveScratch, in *Instance, delta float64, opts APPOptions) (*Region, error) {
	opts = opts.withDefaults()
	if delta < 0 || math.IsNaN(delta) {
		return nil, fmt.Errorf("core: invalid length constraint %v", delta)
	}
	s.begin(ctx)
	defer s.cancel.Release() // don't pin the caller's context between queries
	if s.cancel.Now() {
		return nil, s.cancel.Err()
	}
	if err := ScaleInto(in, opts.Alpha, &s.scaling); err != nil {
		if in.NumNodes > 0 {
			// No relevant node: the query has an empty answer, not an error.
			return nil, nil
		}
		return nil, err
	}
	sc := &s.scaling
	s.pcstEdges = growTo(s.pcstEdges, len(in.Edges))
	for i, e := range in.Edges {
		s.pcstEdges[i] = pcst.Edge{U: e.U, V: e.V, Cost: e.Length}
	}
	var solver kmst.Solver
	switch opts.Solver {
	case SolverSPT:
		if s.spt == nil {
			s.spt = kmst.NewSPTSolver(8)
		}
		if err := s.spt.Reset(in.NumNodes, s.pcstEdges, sc.Scaled); err != nil {
			return nil, err
		}
		s.spt.SetCancel(&s.cancel)
		solver = s.spt
	default:
		if s.garg == nil {
			s.garg = kmst.NewGargSolver()
		}
		if err := s.garg.Reset(in.NumNodes, s.pcstEdges, sc.Scaled); err != nil {
			return nil, err
		}
		s.garg.SetCancel(&s.cancel)
		solver = s.garg
	}

	tc, ok, err := binarySearch(sc, solver, delta, opts.Beta, opts.Trace, &s.cancel)
	if err != nil {
		return nil, err
	}
	if s.cancel.Cancelled() {
		return nil, s.cancel.Err()
	}
	_, argmax := in.MaxWeight()
	fallback := s.singleton(in, argmax)
	if !ok {
		// Even the lightest quota produced nothing useful; answer with the
		// single most relevant node, which is always feasible (length 0).
		return &fallback.Region, nil
	}

	// Algorithm 1, line 3: a candidate tree already within the budget is
	// returned as-is; otherwise extract the best subtree by DP.
	if tc.Length < delta {
		r := s.resultFromTree(in, tc)
		if fallback.Region.betterScore(&r.Region) {
			r = fallback
		}
		return &r.Region, nil
	}
	s.tcEdges = growTo(s.tcEdges, len(tc.Edges))
	for i, x := range tc.Edges {
		s.tcEdges[i] = int32(x)
	}
	best := s.findOptTree(in, tc.Nodes, s.tcEdges, delta)
	if s.cancel.Cancelled() {
		return nil, s.cancel.Err()
	}
	if fallback.Region.betterScore(best) {
		best = &fallback.Region
	}
	return best, nil
}

// resultFromTree converts a quota-solver tree into an arena Region with
// exact weights.
func (s *SolveScratch) resultFromTree(in *Instance, t kmst.Result) *poolRegion {
	r := s.pool.newRegion()
	nodes := s.pool.allocInts(len(t.Nodes))
	copy(nodes, t.Nodes)
	edges := s.pool.allocInts(len(t.Edges))
	for i, x := range t.Edges {
		edges[i] = int32(x)
	}
	r.Region = Region{Length: t.Length, Nodes: nodes, Edges: edges}
	for _, v := range t.Nodes {
		r.Score += in.Weights[v]
		r.Scaled += s.scaling.Scaled[v]
	}
	return r
}

// findOptTree is findOptTree with pooled scratch: the candidate tree is
// remapped to local indices, its adjacency becomes a pooled CSR whose
// per-node order matches the map-based build (tree edge order), and the
// per-node tuple arrays draw from the region arena. Only the non-keepArrays
// form is needed here (the top-k extension keeps the allocating path).
func (s *SolveScratch) findOptTree(in *Instance, treeNodes []int32, treeEdges []int32, delta float64) *Region {
	if len(treeNodes) == 0 {
		return nil
	}
	nt := len(treeNodes)
	s.pos = growTo(s.pos, in.NumNodes)
	for i, v := range treeNodes {
		s.pos[v] = int32(i)
	}
	// Local tree adjacency CSR in tree-edge order.
	s.adjOffs = growTo(s.adjOffs, nt+1)
	for i := 0; i <= nt; i++ {
		s.adjOffs[i] = 0
	}
	for _, ei := range treeEdges {
		e := in.Edges[ei]
		s.adjOffs[s.pos[e.U]+1]++
		s.adjOffs[s.pos[e.V]+1]++
	}
	for i := 0; i < nt; i++ {
		s.adjOffs[i+1] += s.adjOffs[i]
	}
	s.cursor = growTo(s.cursor, nt)
	copy(s.cursor, s.adjOffs[:nt])
	s.adjTo = growTo(s.adjTo, 2*len(treeEdges))
	s.adjEdge = growTo(s.adjEdge, 2*len(treeEdges))
	s.deg = growTo(s.deg, nt)
	for i := 0; i < nt; i++ {
		s.deg[i] = 0
	}
	for _, ei := range treeEdges {
		e := in.Edges[ei]
		lu, lv := s.pos[e.U], s.pos[e.V]
		s.adjTo[s.cursor[lu]] = e.V
		s.adjEdge[s.cursor[lu]] = ei
		s.cursor[lu]++
		s.adjTo[s.cursor[lv]] = e.U
		s.adjEdge[s.cursor[lv]] = ei
		s.cursor[lv]++
		s.deg[lu]++
		s.deg[lv]++
	}

	s.ensureArrays(nt) // local (tree) indexing for this DP
	for i, v := range treeNodes {
		sg := s.singleton(in, v)
		s.update(int32(i), sg)
		s.considerFeasible(sg, delta)
	}

	// Leaf-peeling queue (paper's nodeQ): nodes with one remaining
	// neighbour; a single-node tree is already handled by the singletons.
	s.removed = growTo(s.removed, nt)
	for i := 0; i < nt; i++ {
		s.removed[i] = false
	}
	queue := s.foQueue[:0]
	for _, v := range treeNodes {
		if s.deg[s.pos[v]] == 1 {
			queue = append(queue, v)
		}
	}
	head := 0
	remaining := nt
	for head < len(queue) && remaining > 1 {
		if s.cancel.Tick() {
			return nil // caller surfaces s.cancel.Err()
		}
		v := queue[head]
		head++
		lv := s.pos[v]
		if s.removed[lv] {
			continue
		}
		// v's single remaining neighbour vn (the parent, per Lemma 6).
		var vn int32 = -1
		var edgeIdx int32
		for k := s.adjOffs[lv]; k < s.adjOffs[lv+1]; k++ {
			if !s.removed[s.pos[s.adjTo[k]]] {
				vn, edgeIdx = s.adjTo[k], s.adjEdge[k]
				break
			}
		}
		if vn < 0 {
			break // isolated remnant; defensive
		}
		lvn := s.pos[vn]
		// Fold v's array into vn's (Lemma 7). Materialize vn's current
		// tuples first so newly added ones are not combined with vArr
		// again; guard them with references so an in-fold replacement
		// cannot recycle a region the enumeration still reads.
		vArr := s.arrays[lv]
		snapshot := s.snapshot[:0]
		for _, ent := range s.arrays[lvn] {
			s.pool.ref(ent.r)
			snapshot = append(snapshot, ent.r)
		}
		s.snapshot = snapshot
		for _, t2 := range vArr {
			if s.cancel.Tick() {
				break // unwind via the loop exit; caller checks Cancelled
			}
			for _, t1 := range snapshot {
				nr := s.combine(in, t1, t2.r, edgeIdx)
				if nr.Length > delta {
					s.pool.free(nr)
					continue
				}
				if s.update(lvn, nr) {
					s.considerFeasible(nr, delta)
				}
				if nr.refs == 0 {
					s.pool.free(nr)
				}
			}
		}
		for _, t1 := range snapshot {
			s.pool.deref(t1)
		}
		s.dropArray(lv)
		s.removed[lv] = true
		remaining--
		s.deg[lvn]--
		if s.deg[lvn] == 1 {
			queue = append(queue, vn)
		}
	}
	s.foQueue = queue[:0]
	return s.bestRegion()
}
