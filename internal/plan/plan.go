// Package plan is the cost-based query planner behind Method = Auto: it
// turns the grid's directory statistics into per-method cost estimates
// and picks the solver a request can afford within its deadline.
//
// The three solvers form a quality/cost ladder. APP (§4) is the only one
// with a provable (5+ε) approximation bound, and the most expensive.
// TGEN (§5) is the paper's best practical heuristic — near-APP quality
// at a fraction of the cost — and the server's default. Greedy (§6.1)
// is the cheap floor. Auto walks the ladder top-down: the most expensive
// method whose estimated cost, with headroom, fits the request's budget
// wins. Under queue pressure the choice degrades one rung instead of
// letting the request age toward the shedding threshold — a cheaper
// answer beats ErrOverloaded.
//
// Everything here is pure computation on value types: no allocation, no
// locks, no clocks. Estimates and choices for the same inputs are
// identical across runs, which is what lets Auto be golden-tested
// bit-identical against direct method selection. The caller owns every
// value; nothing is pooled or retained.
package plan

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/queryengine"
)

// DefaultBudget is the solve budget assumed for requests that carry no
// deadline and set no explicit budget. It is deliberately generous: an
// undeclared deadline should get the best affordable answer, not a
// panicked cheap one.
const DefaultBudget = time.Second

// Headroom is the safety factor between an estimate and the budget it
// must fit: a method is affordable when Headroom × estimate ≤ budget.
// Estimates come from directory counts, not measurements, so spending at
// most half the budget on the model's say-so keeps a mis-estimate from
// blowing the deadline.
const Headroom = 2

// DegradePressure is the queue-pressure threshold at which Auto degrades
// its choice one rung (APP→TGEN, TGEN→Greedy). Pressure is queue wait
// over the shedding threshold (MaxQueueAge), so degradation at 0.5
// structurally fires before shedding at 1.0: a server under building
// load serves cheaper answers first and sheds only when even that cannot
// keep up.
const DegradePressure = 0.5

// CostModel converts directory statistics into per-method durations. The
// zero value is not useful; start from Default. Fields are plain values —
// copy freely, no ownership rules.
type CostModel struct {
	// SearchPerList and SearchPerPosting price the grid search: per
	// posting list fetched and per posting accumulated.
	SearchPerList    time.Duration
	SearchPerPosting time.Duration
	// GreedyPerNode, TGENPerNode and APPPerNode price each solver per
	// working-graph node. They must be strictly increasing in that order
	// so the estimate ladder (Greedy < TGEN < APP) is strict too.
	GreedyPerNode time.Duration
	TGENPerNode   time.Duration
	APPPerNode    time.Duration
}

// Default is the cost model calibrated against this repository's
// end-to-end serving benchmarks (BenchmarkServeQuery: Greedy ≈ 13µs,
// TGEN ≈ 360µs, APP ≈ 1.7ms on the scaled default dataset). Absolute
// precision does not matter — Auto compares methods against each other
// and against a budget, so only the ratios steer.
func Default() CostModel {
	return CostModel{
		SearchPerList:    200 * time.Nanosecond,
		SearchPerPosting: 2 * time.Nanosecond,
		GreedyPerNode:    5 * time.Nanosecond,
		TGENPerNode:      150 * time.Nanosecond,
		APPPerNode:       700 * time.Nanosecond,
	}
}

// Estimate is the model's prediction for one request: the instance size
// it was computed from and the end-to-end (search + solve) duration per
// method. Greedy < TGEN < APP always holds strictly.
type Estimate struct {
	// Nodes is the working-graph size the solve estimates used: the
	// actual instance size when known, otherwise the directory-based
	// candidate bound.
	Nodes int64
	// Search is the grid-search share, common to all methods.
	Search time.Duration
	// Greedy, TGEN and APP are the per-method end-to-end estimates.
	Greedy time.Duration
	TGEN   time.Duration
	APP    time.Duration
}

// Of returns the estimate for m (MethodAuto is not a solver and panics).
func (e Estimate) Of(m queryengine.Method) time.Duration {
	switch m {
	case queryengine.MethodGreedy:
		return e.Greedy
	case queryengine.MethodTGEN:
		return e.TGEN
	case queryengine.MethodAPP:
		return e.APP
	}
	panic(fmt.Sprintf("plan: no estimate for method %v", m))
}

// Estimate prices a request from the grid's directory walk. nodes is the
// instance's working-graph node count when the caller already
// instantiated (the serving path chooses post-search, so it knows);
// nodes <= 0 falls back to the directory's posting count as the
// candidate-object bound — cells overlapped × postings per cell is
// exactly what se carries. The result is deterministic in its inputs.
func (m CostModel) Estimate(se grid.SearchEstimate, nodes int) Estimate {
	n := int64(nodes)
	if n <= 0 {
		n = se.Postings
	}
	if n < 1 {
		n = 1
	}
	search := time.Duration(se.Lists)*m.SearchPerList + time.Duration(se.Postings)*m.SearchPerPosting
	return Estimate{
		Nodes:  n,
		Search: search,
		Greedy: search + time.Duration(n)*m.GreedyPerNode,
		TGEN:   search + time.Duration(n)*m.TGENPerNode,
		APP:    search + time.Duration(n)*m.APPPerNode,
	}
}

// Choice is one planning decision: the solver to run, the human-readable
// reason, and whether load pressure degraded the budget-affordable pick.
// A Choice is a value; the Reason string is freshly formatted per call
// and owned by the caller.
type Choice struct {
	// Method is the solver to run (never MethodAuto).
	Method queryengine.Method
	// Estimated is the model's end-to-end estimate for Method.
	Estimated time.Duration
	// Degraded reports that pressure pushed the choice one rung below
	// what the budget alone would have afforded.
	Degraded bool
	// Reason explains the decision in one line, for EXPLAIN output.
	Reason string
}

// Choose picks the solver for one request: the most expensive method
// whose Headroom-padded estimate fits budget, degraded one rung when
// pressure ≥ DegradePressure. budget <= 0 means DefaultBudget; pressure
// is the request's queue wait over the shedding threshold (0 when the
// server does not shed). Deterministic in its inputs.
func Choose(est Estimate, budget time.Duration, pressure float64) Choice {
	if budget <= 0 {
		budget = DefaultBudget
	}
	var c Choice
	switch {
	case Headroom*est.APP <= budget:
		c.Method = queryengine.MethodAPP
		c.Reason = fmt.Sprintf("app: provable bound affordable (%d×%v ≤ budget %v)", Headroom, est.APP, budget)
	case Headroom*est.TGEN <= budget:
		c.Method = queryengine.MethodTGEN
		c.Reason = fmt.Sprintf("tgen: app over budget (%d×%v > %v), tgen fits (%d×%v ≤ %v)",
			Headroom, est.APP, budget, Headroom, est.TGEN, budget)
	default:
		c.Method = queryengine.MethodGreedy
		c.Reason = fmt.Sprintf("greedy: only method within budget (%d×tgen %v > %v)", Headroom, est.TGEN, budget)
	}
	if pressure >= DegradePressure {
		switch c.Method {
		case queryengine.MethodAPP:
			c.Method = queryengine.MethodTGEN
			c.Degraded = true
			c.Reason += fmt.Sprintf("; degraded app→tgen under load (pressure %.2f ≥ %.2f)", pressure, DegradePressure)
		case queryengine.MethodTGEN:
			c.Method = queryengine.MethodGreedy
			c.Degraded = true
			c.Reason += fmt.Sprintf("; degraded tgen→greedy under load (pressure %.2f ≥ %.2f)", pressure, DegradePressure)
		}
	}
	c.Estimated = est.Of(c.Method)
	return c
}
