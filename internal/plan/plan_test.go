package plan

import (
	"strings"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/queryengine"
)

func TestEstimateLadderStrict(t *testing.T) {
	m := Default()
	for _, nodes := range []int{0, 1, 10, 100000} {
		for _, se := range []grid.SearchEstimate{
			{},
			{Cells: 4, CellsWithTerms: 2, Lists: 3, Postings: 50},
			{Cells: 400, CellsWithTerms: 300, Lists: 900, Postings: 250000},
		} {
			e := m.Estimate(se, nodes)
			if !(e.Greedy < e.TGEN && e.TGEN < e.APP) {
				t.Fatalf("ladder not strict for se=%+v nodes=%d: %+v", se, nodes, e)
			}
			if e.Nodes < 1 {
				t.Fatalf("nodes floor violated: %+v", e)
			}
			if e.Greedy < e.Search {
				t.Fatalf("solve estimate below search share: %+v", e)
			}
		}
	}
}

func TestEstimateUsesActualNodesWhenKnown(t *testing.T) {
	m := Default()
	se := grid.SearchEstimate{Lists: 10, Postings: 10000}
	if got, want := m.Estimate(se, 42).Nodes, int64(42); got != want {
		t.Fatalf("Nodes = %d, want %d (actual instance size)", got, want)
	}
	if got, want := m.Estimate(se, 0).Nodes, int64(10000); got != want {
		t.Fatalf("Nodes = %d, want %d (directory posting bound)", got, want)
	}
}

func TestChooseWalksLadderByBudget(t *testing.T) {
	est := Default().Estimate(grid.SearchEstimate{Lists: 5, Postings: 1000}, 500)
	cases := []struct {
		budget time.Duration
		want   queryengine.Method
	}{
		{Headroom * est.APP, queryengine.MethodAPP},
		{Headroom*est.APP - time.Nanosecond, queryengine.MethodTGEN},
		{Headroom * est.TGEN, queryengine.MethodTGEN},
		{Headroom*est.TGEN - time.Nanosecond, queryengine.MethodGreedy},
		{time.Nanosecond, queryengine.MethodGreedy},
	}
	for _, c := range cases {
		got := Choose(est, c.budget, 0)
		if got.Method != c.want {
			t.Fatalf("budget %v: chose %v, want %v (reason %q)", c.budget, got.Method, c.want, got.Reason)
		}
		if got.Degraded {
			t.Fatalf("budget %v: degraded without pressure: %q", c.budget, got.Reason)
		}
		if got.Estimated != est.Of(got.Method) {
			t.Fatalf("budget %v: Estimated %v != est.Of(%v) %v", c.budget, got.Estimated, got.Method, est.Of(got.Method))
		}
		if got.Reason == "" {
			t.Fatalf("budget %v: empty reason", c.budget)
		}
	}
}

func TestChooseZeroBudgetMeansDefault(t *testing.T) {
	est := Default().Estimate(grid.SearchEstimate{Lists: 1, Postings: 10}, 10)
	// A tiny instance under the generous default budget affords APP.
	if got := Choose(est, 0, 0); got.Method != queryengine.MethodAPP {
		t.Fatalf("zero budget chose %v, want APP under DefaultBudget (reason %q)", got.Method, got.Reason)
	}
}

func TestChooseDegradesUnderPressure(t *testing.T) {
	est := Default().Estimate(grid.SearchEstimate{Lists: 5, Postings: 1000}, 500)
	huge := 100 * Headroom * est.APP

	// APP budget + pressure → TGEN, marked degraded.
	c := Choose(est, huge, DegradePressure)
	if c.Method != queryengine.MethodTGEN || !c.Degraded {
		t.Fatalf("pressure at threshold: got %v degraded=%v, want TGEN degraded", c.Method, c.Degraded)
	}
	if !strings.Contains(c.Reason, "degraded") {
		t.Fatalf("degraded reason missing marker: %q", c.Reason)
	}

	// TGEN budget + pressure → Greedy: the ISSUE's TGEN→Greedy degradation.
	c = Choose(est, Headroom*est.TGEN, 0.9)
	if c.Method != queryengine.MethodGreedy || !c.Degraded {
		t.Fatalf("tgen budget under pressure: got %v degraded=%v, want Greedy degraded", c.Method, c.Degraded)
	}

	// Greedy is the floor: pressure cannot degrade it further or mark it.
	c = Choose(est, time.Nanosecond, 0.99)
	if c.Method != queryengine.MethodGreedy || c.Degraded {
		t.Fatalf("greedy floor: got %v degraded=%v, want Greedy not degraded", c.Method, c.Degraded)
	}

	// Below the threshold nothing degrades.
	c = Choose(est, huge, DegradePressure-0.01)
	if c.Method != queryengine.MethodAPP || c.Degraded {
		t.Fatalf("below threshold: got %v degraded=%v, want APP not degraded", c.Method, c.Degraded)
	}
}

func TestChooseDeterministic(t *testing.T) {
	est := Default().Estimate(grid.SearchEstimate{Cells: 9, Lists: 12, Postings: 3456}, 789)
	a := Choose(est, 5*time.Millisecond, 0.25)
	b := Choose(est, 5*time.Millisecond, 0.25)
	if a != b {
		t.Fatalf("Choose not deterministic: %+v vs %+v", a, b)
	}
}
