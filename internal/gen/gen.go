// Package gen synthesizes the experimental substrates the paper's datasets
// provide (§7.1), which are not redistributable/downloadable offline:
//
//   - a Manhattan-style road network (perturbed grid with missing blocks
//     and dead-ends) standing in for the DIMACS New York network;
//   - a random geometric network (sparser, longer edges) standing in for
//     the northwest-USA network;
//   - Zipf-distributed keyword vocabularies standing in for Google Places
//     categories (NY) and Flickr tags (USANW) — term frequencies in both
//     corpora are classically Zipfian;
//   - geo-textual objects placed "following the network distribution"
//     (near random road nodes), exactly how the paper generates USANW
//     objects and snaps NY objects.
//
// Densities (nodes/km², objects/node) track the real datasets; absolute
// counts are scaled down by a size knob so the full benchmark suite runs
// on one machine. See DESIGN.md ("Substitutions").
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// GridConfig describes a Manhattan-style network.
type GridConfig struct {
	Rows, Cols int
	// Spacing is the nominal block edge length in metres.
	Spacing float64
	// Jitter perturbs node positions by ±Jitter·Spacing (0..0.5 sensible).
	Jitter float64
	// RemoveEdge is the probability an interior grid edge is deleted
	// (parks, blocked streets); connectivity is restored afterwards.
	RemoveEdge float64
	// DeadEndFrac converts this fraction of boundary nodes into dead-end
	// stubs poking outward.
	DeadEndFrac float64
}

// Validate reports configuration errors.
func (c GridConfig) Validate() error {
	if c.Rows < 2 || c.Cols < 2 {
		return fmt.Errorf("gen: grid needs at least 2x2, got %dx%d", c.Rows, c.Cols)
	}
	if c.Spacing <= 0 {
		return fmt.Errorf("gen: spacing must be positive, got %v", c.Spacing)
	}
	if c.Jitter < 0 || c.Jitter > 0.5 {
		return fmt.Errorf("gen: jitter must be in [0, 0.5], got %v", c.Jitter)
	}
	if c.RemoveEdge < 0 || c.RemoveEdge >= 1 {
		return fmt.Errorf("gen: remove-edge probability must be in [0,1), got %v", c.RemoveEdge)
	}
	if c.DeadEndFrac < 0 || c.DeadEndFrac > 1 {
		return fmt.Errorf("gen: dead-end fraction must be in [0,1], got %v", c.DeadEndFrac)
	}
	return nil
}

// ManhattanGrid generates a perturbed grid road network. The result is
// always connected.
func ManhattanGrid(cfg GridConfig, rng *rand.Rand) (*roadnet.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := roadnet.NewBuilder()
	ids := make([][]roadnet.NodeID, cfg.Rows)
	pos := make(map[roadnet.NodeID]geo.Point)
	for r := 0; r < cfg.Rows; r++ {
		ids[r] = make([]roadnet.NodeID, cfg.Cols)
		for c := 0; c < cfg.Cols; c++ {
			jx := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.Spacing
			jy := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.Spacing
			p := geo.Point{
				X: float64(c)*cfg.Spacing + jx,
				Y: float64(r)*cfg.Spacing + jy,
			}
			ids[r][c] = b.AddNode(p)
			pos[ids[r][c]] = p
		}
	}
	type pending struct{ u, v roadnet.NodeID }
	var kept, removed []pending
	consider := func(u, v roadnet.NodeID) {
		if rng.Float64() < cfg.RemoveEdge {
			removed = append(removed, pending{u, v})
		} else {
			kept = append(kept, pending{u, v})
		}
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				consider(ids[r][c], ids[r][c+1])
			}
			if r+1 < cfg.Rows {
				consider(ids[r][c], ids[r+1][c])
			}
		}
	}
	for _, e := range kept {
		if err := b.AddEdgeEuclidean(e.u, e.v); err != nil {
			return nil, err
		}
	}
	// Dead-end stubs on the boundary.
	if cfg.DeadEndFrac > 0 {
		for c := 0; c < cfg.Cols; c++ {
			if rng.Float64() < cfg.DeadEndFrac {
				base := ids[0][c]
				stub := b.AddNode(pos[base].Add(0, -0.5*cfg.Spacing))
				if err := b.AddEdgeEuclidean(base, stub); err != nil {
					return nil, err
				}
			}
		}
	}
	g := b.Build()
	// Restore connectivity broken by removals: re-add removed edges that
	// bridge components until one component remains.
	comps := g.Components()
	for len(comps) > 1 && len(removed) > 0 {
		compOf := make(map[roadnet.NodeID]int)
		for ci, comp := range comps {
			for _, v := range comp {
				compOf[v] = ci
			}
		}
		nb := roadnet.NewBuilder()
		for v := 0; v < g.NumNodes(); v++ {
			nb.AddNode(g.Point(roadnet.NodeID(v)))
		}
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(roadnet.EdgeID(i))
			if err := nb.AddEdge(e.U, e.V, e.Length); err != nil {
				return nil, err
			}
		}
		var still []pending
		bridged := false
		for _, e := range removed {
			if !bridged && compOf[e.u] != compOf[e.v] {
				if err := nb.AddEdgeEuclidean(e.u, e.v); err != nil {
					return nil, err
				}
				bridged = true
			} else {
				still = append(still, e)
			}
		}
		if !bridged {
			break // removals cannot reconnect (should not happen on a grid)
		}
		removed = still
		g = nb.Build()
		comps = g.Components()
	}
	return g, nil
}

// GeometricConfig describes a random geometric (rural-style) network.
type GeometricConfig struct {
	Nodes int
	// Width and Height of the area in metres.
	Width, Height float64
	// Neighbors is how many nearest nodes each node connects to (≥1).
	Neighbors int
}

// Validate reports configuration errors.
func (c GeometricConfig) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("gen: geometric network needs ≥2 nodes, got %d", c.Nodes)
	}
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("gen: area must be positive, got %v x %v", c.Width, c.Height)
	}
	if c.Neighbors < 1 {
		return fmt.Errorf("gen: neighbors must be ≥1, got %d", c.Neighbors)
	}
	return nil
}

// GeometricNetwork generates a connected random geometric network: nodes
// uniform in the area, each connected to its k nearest neighbours, plus
// minimum bridging edges to guarantee a single component.
func GeometricNetwork(cfg GeometricConfig, rng *rand.Rand) (*roadnet.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pts := make([]geo.Point, cfg.Nodes)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
	}
	b := roadnet.NewBuilder()
	for _, p := range pts {
		b.AddNode(p)
	}
	// Bucket grid for k-nearest queries.
	cell := math.Sqrt(cfg.Width * cfg.Height / float64(cfg.Nodes))
	nx := int(cfg.Width/cell) + 1
	ny := int(cfg.Height/cell) + 1
	buckets := make([][]int32, nx*ny)
	bucketOf := func(p geo.Point) (int, int) {
		cx, cy := int(p.X/cell), int(p.Y/cell)
		if cx >= nx {
			cx = nx - 1
		}
		if cy >= ny {
			cy = ny - 1
		}
		return cx, cy
	}
	for i, p := range pts {
		cx, cy := bucketOf(p)
		buckets[cy*nx+cx] = append(buckets[cy*nx+cx], int32(i))
	}
	added := make(map[[2]int32]bool)
	addEdge := func(u, v int32) error {
		if u == v {
			return nil
		}
		key := [2]int32{min32(u, v), max32(u, v)}
		if added[key] {
			return nil
		}
		added[key] = true
		return b.AddEdgeEuclidean(roadnet.NodeID(u), roadnet.NodeID(v))
	}
	for i, p := range pts {
		// Expand rings of buckets until k candidates are found.
		type cand struct {
			id int32
			d  float64
		}
		var cands []cand
		cx, cy := bucketOf(p)
		for ring := 0; ring < nx+ny && len(cands) < cfg.Neighbors*3; ring++ {
			for dy := -ring; dy <= ring; dy++ {
				for dx := -ring; dx <= ring; dx++ {
					if abs(dx) != ring && abs(dy) != ring {
						continue
					}
					x, y := cx+dx, cy+dy
					if x < 0 || x >= nx || y < 0 || y >= ny {
						continue
					}
					for _, j := range buckets[y*nx+x] {
						if int(j) != i {
							cands = append(cands, cand{j, p.Dist(pts[j])})
						}
					}
				}
			}
		}
		// Partial selection of the k nearest.
		for k := 0; k < cfg.Neighbors && k < len(cands); k++ {
			minIdx := k
			for m := k + 1; m < len(cands); m++ {
				if cands[m].d < cands[minIdx].d {
					minIdx = m
				}
			}
			cands[k], cands[minIdx] = cands[minIdx], cands[k]
			if err := addEdge(int32(i), cands[k].id); err != nil {
				return nil, err
			}
		}
	}
	g := b.Build()
	// Bridge remaining components with their nearest cross pairs.
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return g, nil
		}
		main := comps[0]
		other := comps[1]
		bu, bv, bd := roadnet.NodeID(-1), roadnet.NodeID(-1), math.Inf(1)
		for _, u := range main {
			pu := g.Point(u)
			for _, v := range other {
				if d := pu.Dist(g.Point(v)); d < bd {
					bu, bv, bd = u, v, d
				}
			}
		}
		nb := roadnet.NewBuilder()
		for v := 0; v < g.NumNodes(); v++ {
			nb.AddNode(g.Point(roadnet.NodeID(v)))
		}
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(roadnet.EdgeID(i))
			if err := nb.AddEdge(e.U, e.V, e.Length); err != nil {
				return nil, err
			}
		}
		if err := nb.AddEdgeEuclidean(bu, bv); err != nil {
			return nil, err
		}
		g = nb.Build()
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
