package gen

import (
	"fmt"
	"math/rand"
)

// Query hot spots: real map traffic is Zipfian — a handful of downtown
// queries dominate while the tail is long — so a realistic workload is a
// small pool of distinct "hot" queries replayed with Zipf-distributed
// popularity, not a stream of unique ones. The corpus side of this skew
// already exists (Zipf vocabularies, object placement hot spots above);
// ZipfQueryMix supplies the query side: a popularity-ranked replay
// schedule that callers map onto any pool of generated queries.

// ZipfQueryMix returns a count-length replay schedule over a pool of
// `hot` distinct queries: each element is a pool index in [0, hot), drawn
// from a Zipf(s) popularity distribution where index 0 is the hottest.
// s must be > 1 (the Zipf normalization diverges otherwise); s around
// 1.1–1.5 matches observed map-search skew — the top query accounts for
// a large constant fraction of the traffic.
func ZipfQueryMix(rng *rand.Rand, s float64, hot, count int) ([]int, error) {
	if hot < 1 {
		return nil, fmt.Errorf("gen: need at least one hot query, got %d", hot)
	}
	if count < 0 {
		return nil, fmt.Errorf("gen: negative query count %d", count)
	}
	if s <= 1 {
		return nil, fmt.Errorf("gen: Zipf exponent must be > 1, got %v", s)
	}
	z := rand.NewZipf(rng, s, 1, uint64(hot-1))
	out := make([]int, count)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out, nil
}
