package gen

import (
	"math/rand"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/textindex"
)

func TestGridConfigValidation(t *testing.T) {
	bad := []GridConfig{
		{Rows: 1, Cols: 5, Spacing: 100},
		{Rows: 5, Cols: 5, Spacing: 0},
		{Rows: 5, Cols: 5, Spacing: 100, Jitter: 0.9},
		{Rows: 5, Cols: 5, Spacing: 100, RemoveEdge: 1},
		{Rows: 5, Cols: 5, Spacing: 100, DeadEndFrac: 2},
	}
	for i, cfg := range bad {
		if _, err := ManhattanGrid(cfg, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestManhattanGridShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := ManhattanGrid(GridConfig{Rows: 20, Cols: 30, Spacing: 100, Jitter: 0.2,
		RemoveEdge: 0.08, DeadEndFrac: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 600 {
		t.Errorf("nodes = %d, want ≥ 600", g.NumNodes())
	}
	if comps := g.Components(); len(comps) != 1 {
		t.Errorf("grid has %d components, want 1", len(comps))
	}
	// Edge lengths should hover around spacing.
	if min := g.MinEdgeLength(0); min < 20 {
		t.Errorf("min edge = %v, suspiciously short", min)
	}
	if max := g.MaxEdgeLength(); max > 300 {
		t.Errorf("max edge = %v, suspiciously long for 100m spacing", max)
	}
}

func TestManhattanGridNoRemovals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := ManhattanGrid(GridConfig{Rows: 4, Cols: 5, Spacing: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 {
		t.Errorf("nodes = %d, want 20", g.NumNodes())
	}
	// Full grid: 4*4 + 3*5 = 31 edges.
	if g.NumEdges() != 31 {
		t.Errorf("edges = %d, want 31", g.NumEdges())
	}
}

func TestGeometricConfigValidation(t *testing.T) {
	bad := []GeometricConfig{
		{Nodes: 1, Width: 10, Height: 10, Neighbors: 2},
		{Nodes: 10, Width: 0, Height: 10, Neighbors: 2},
		{Nodes: 10, Width: 10, Height: 10, Neighbors: 0},
	}
	for i, cfg := range bad {
		if _, err := GeometricNetwork(cfg, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGeometricNetworkConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := GeometricNetwork(GeometricConfig{Nodes: 800, Width: 10000, Height: 8000, Neighbors: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 800 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if comps := g.Components(); len(comps) != 1 {
		t.Errorf("network has %d components, want 1", len(comps))
	}
	// k-NN with k=3 should give average degree between 3 and 6.
	avgDeg := float64(2*g.NumEdges()) / float64(g.NumNodes())
	if avgDeg < 2.5 || avgDeg > 7 {
		t.Errorf("avg degree = %.2f, outside [2.5, 7]", avgDeg)
	}
}

func TestTextConfigValidation(t *testing.T) {
	g, _ := ManhattanGrid(GridConfig{Rows: 3, Cols: 3, Spacing: 10}, rand.New(rand.NewSource(1)))
	bad := []TextConfig{
		{VocabSize: 0, ZipfS: 1.1, MinTerms: 1, MaxTerms: 2, Objects: 5},
		{VocabSize: 10, ZipfS: 1.0, MinTerms: 1, MaxTerms: 2, Objects: 5},
		{VocabSize: 10, ZipfS: 1.1, MinTerms: 0, MaxTerms: 2, Objects: 5},
		{VocabSize: 10, ZipfS: 1.1, MinTerms: 3, MaxTerms: 2, Objects: 5},
		{VocabSize: 10, ZipfS: 1.1, MinTerms: 1, MaxTerms: 2, Objects: 0},
		{VocabSize: 10, ZipfS: 1.1, MinTerms: 1, MaxTerms: 2, Objects: 5, SnapJitter: -1},
	}
	for i, cfg := range bad {
		if _, err := PlaceObjects(g, cfg, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	empty := roadnet.NewBuilder().Build()
	ok := TextConfig{VocabSize: 10, ZipfS: 1.1, MinTerms: 1, MaxTerms: 2, Objects: 5}
	if _, err := PlaceObjects(empty, ok, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestPlaceObjectsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := ManhattanGrid(GridConfig{Rows: 15, Cols: 15, Spacing: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := PlaceObjects(g, TextConfig{
		VocabSize: 200, ZipfS: 1.2, MinTerms: 1, MaxTerms: 4,
		Objects: 2000, SnapJitter: 20,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Objects) != 2000 || len(c.ObjNode) != 2000 {
		t.Fatalf("got %d objects, %d anchors", len(c.Objects), len(c.ObjNode))
	}
	if c.Vocab.NumDocs() != 2000 {
		t.Errorf("|D| = %d, want 2000", c.Vocab.NumDocs())
	}
	// Zipf skew: the most frequent term must dominate the median term.
	topDF, medianDF := 0, 0
	dfs := make([]int, 0, c.Vocab.NumTerms())
	for id := 0; id < c.Vocab.NumTerms(); id++ {
		df := c.Vocab.DocFreq(textindex.TermID(id))
		dfs = append(dfs, df)
		if df > topDF {
			topDF = df
		}
	}
	if len(dfs) > 2 {
		medianDF = dfs[len(dfs)/2]
		if topDF < 5*medianDF {
			t.Errorf("top df %d vs median %d: not Zipf-skewed", topDF, medianDF)
		}
	}
	// Objects near their anchors.
	for i, o := range c.Objects {
		if d := o.Point.Dist(g.Point(c.ObjNode[i])); d > 29 {
			t.Fatalf("object %d is %vm from its anchor, jitter is 20", i, d)
		}
	}
	// Bounds covers everything.
	bounds := c.Bounds(g, 10)
	for _, o := range c.Objects {
		if !bounds.Contains(o.Point) {
			t.Fatal("object outside Bounds")
		}
	}
}

func TestHotspotClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	g, err := GeometricNetwork(GeometricConfig{Nodes: 600, Width: 20000, Height: 20000, Neighbors: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := PlaceObjects(g, TextConfig{
		VocabSize: 100, ZipfS: 1.2, MinTerms: 1, MaxTerms: 3,
		Objects: 600, SnapJitter: 10,
		Hotspots: 5, HotspotFrac: 0.7, HotspotRadius: 1500,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Clustering signature: the most popular anchor cell should hold far
	// more objects than the uniform expectation.
	counts := map[roadnet.NodeID]int{}
	maxCount := 0
	for _, n := range c.ObjNode {
		counts[n]++
		if counts[n] > maxCount {
			maxCount = counts[n]
		}
	}
	// Uniform placement: 600 objects over 600 nodes, max ≈ 4-5.
	if maxCount < 8 {
		t.Errorf("max objects per node = %d; clustering seems inactive", maxCount)
	}
}

func TestHotspotValidation(t *testing.T) {
	g, _ := ManhattanGrid(GridConfig{Rows: 3, Cols: 3, Spacing: 10}, rand.New(rand.NewSource(1)))
	bad := []TextConfig{
		{VocabSize: 10, ZipfS: 1.1, MinTerms: 1, MaxTerms: 2, Objects: 5, Hotspots: -1},
		{VocabSize: 10, ZipfS: 1.1, MinTerms: 1, MaxTerms: 2, Objects: 5, HotspotFrac: 1.5},
		{VocabSize: 10, ZipfS: 1.1, MinTerms: 1, MaxTerms: 2, Objects: 5, HotspotRadius: -2},
	}
	for i, cfg := range bad {
		if _, err := PlaceObjects(g, cfg, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("hotspot config %d accepted", i)
		}
	}
}
