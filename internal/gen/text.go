package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/roadnet"
	"repro/internal/textindex"
)

// TextConfig describes a synthetic geo-textual corpus.
type TextConfig struct {
	// VocabSize is the number of distinct terms.
	VocabSize int
	// ZipfS is the Zipf exponent (>1); real keyword corpora sit ~1.1.
	ZipfS float64
	// TermsPerObject bounds the description lengths (uniform in
	// [MinTerms, MaxTerms]).
	MinTerms, MaxTerms int
	// Objects is how many geo-textual objects to place.
	Objects int
	// SnapJitter places each object within this distance (metres) of its
	// anchor node — "following the network distribution".
	SnapJitter float64
	// Hotspots concentrates object placement: this many random nodes act
	// as attraction centres, and HotspotFrac of the objects anchor at a
	// node near one of them instead of a uniformly random node. Real
	// geo-textual corpora (Flickr photos, business listings) cluster this
	// way. Zero disables clustering.
	Hotspots int
	// HotspotFrac is the fraction of objects drawn to hotspots (0..1).
	HotspotFrac float64
	// HotspotRadius is the attraction radius in metres (default 1500).
	HotspotRadius float64
}

// Validate reports configuration errors.
func (c TextConfig) Validate() error {
	if c.VocabSize < 1 {
		return fmt.Errorf("gen: vocabulary must be non-empty, got %d", c.VocabSize)
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("gen: Zipf exponent must exceed 1, got %v", c.ZipfS)
	}
	if c.MinTerms < 1 || c.MaxTerms < c.MinTerms {
		return fmt.Errorf("gen: bad term range [%d,%d]", c.MinTerms, c.MaxTerms)
	}
	if c.Objects < 1 {
		return fmt.Errorf("gen: need at least one object, got %d", c.Objects)
	}
	if c.SnapJitter < 0 {
		return fmt.Errorf("gen: negative snap jitter %v", c.SnapJitter)
	}
	if c.Hotspots < 0 || c.HotspotFrac < 0 || c.HotspotFrac > 1 || c.HotspotRadius < 0 {
		return fmt.Errorf("gen: bad hotspot config (%d, %v, %v)", c.Hotspots, c.HotspotFrac, c.HotspotRadius)
	}
	return nil
}

// Corpus is a generated object set with its vocabulary and the node each
// object snaps to.
type Corpus struct {
	Vocab   *textindex.Vocabulary
	Objects []grid.Object
	// ObjNode[i] is the road node object i is mapped to (its nearest
	// node, by construction its anchor).
	ObjNode []roadnet.NodeID
	// Ratings[i] is a synthetic popularity/rating in (0, 5], standing in
	// for the check-in counts and user ratings §2 of the paper mentions
	// as alternative object scores.
	Ratings []float64
}

// Term returns the synthetic term string with the given rank.
func Term(rank int) string { return fmt.Sprintf("t%04d", rank) }

// PlaceObjects generates cfg.Objects geo-textual objects anchored at
// uniformly random nodes of g, with Zipf-distributed term descriptions.
func PlaceObjects(g *roadnet.Graph, cfg TextConfig, rng *rand.Rand) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("gen: cannot place objects on an empty graph")
	}
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1))
	// Precompute the candidate anchor nodes around each hotspot.
	var hotspotNodes [][]roadnet.NodeID
	if cfg.Hotspots > 0 && cfg.HotspotFrac > 0 {
		radius := cfg.HotspotRadius
		if radius == 0 {
			radius = 1500
		}
		for h := 0; h < cfg.Hotspots; h++ {
			centre := g.Point(roadnet.NodeID(rng.Intn(g.NumNodes())))
			var near []roadnet.NodeID
			for v := 0; v < g.NumNodes(); v++ {
				if centre.Dist(g.Point(roadnet.NodeID(v))) <= radius {
					near = append(near, roadnet.NodeID(v))
				}
			}
			if len(near) > 0 {
				hotspotNodes = append(hotspotNodes, near)
			}
		}
	}
	c := &Corpus{
		Vocab:   textindex.NewVocabulary(),
		Objects: make([]grid.Object, 0, cfg.Objects),
		ObjNode: make([]roadnet.NodeID, 0, cfg.Objects),
		Ratings: make([]float64, 0, cfg.Objects),
	}
	for i := 0; i < cfg.Objects; i++ {
		var node roadnet.NodeID
		if len(hotspotNodes) > 0 && rng.Float64() < cfg.HotspotFrac {
			near := hotspotNodes[rng.Intn(len(hotspotNodes))]
			node = near[rng.Intn(len(near))]
		} else {
			node = roadnet.NodeID(rng.Intn(g.NumNodes()))
		}
		p := g.Point(node)
		if cfg.SnapJitter > 0 {
			p = p.Add((rng.Float64()*2-1)*cfg.SnapJitter, (rng.Float64()*2-1)*cfg.SnapJitter)
		}
		nTerms := cfg.MinTerms + rng.Intn(cfg.MaxTerms-cfg.MinTerms+1)
		tokens := make([]string, nTerms)
		for j := range tokens {
			tokens[j] = Term(int(zipf.Uint64()))
		}
		c.Objects = append(c.Objects, grid.Object{Point: p, Doc: c.Vocab.IndexDoc(tokens)})
		c.ObjNode = append(c.ObjNode, node)
		// Ratings cluster around 3.5 stars, clamped to (0, 5].
		r := 3.5 + rng.NormFloat64()
		if r < 0.5 {
			r = 0.5
		}
		if r > 5 {
			r = 5
		}
		c.Ratings = append(c.Ratings, r)
	}
	return c, nil
}

// Bounds returns a bounding rectangle covering the graph and all objects,
// expanded by a margin so boundary objects index cleanly.
func (c *Corpus) Bounds(g *roadnet.Graph, margin float64) geo.Rect {
	r := g.BBox().Expand(margin)
	for _, o := range c.Objects {
		if !r.Contains(o.Point) {
			if o.Point.X < r.MinX {
				r.MinX = o.Point.X
			}
			if o.Point.X > r.MaxX {
				r.MaxX = o.Point.X
			}
			if o.Point.Y < r.MinY {
				r.MinY = o.Point.Y
			}
			if o.Point.Y > r.MaxY {
				r.MaxY = o.Point.Y
			}
		}
	}
	return r
}
