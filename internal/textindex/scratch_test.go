package textindex

import (
	"fmt"
	"math/rand"
	"testing"
)

// scratchCorpus indexes a small vocabulary with skewed document
// frequencies so IDF weights differ across terms.
func scratchCorpus(t testing.TB) (*Vocabulary, []string) {
	t.Helper()
	v := NewVocabulary()
	words := make([]string, 12)
	for i := range words {
		words[i] = fmt.Sprintf("w%02d", i)
	}
	rng := rand.New(rand.NewSource(3))
	for d := 0; d < 200; d++ {
		var toks []string
		for i, w := range words {
			// word i appears in ~1/(i+1) of documents: w00 hot, w11 rare.
			if rng.Intn(i+1) == 0 {
				toks = append(toks, w)
			}
		}
		v.IndexDoc(toks)
	}
	return v, words
}

// TestPrepareQueryIntoMatchesPrepareQuery is the golden comparison: the
// pooled variant must return exactly what the allocating one does — same
// terms, bit-identical IDF weights and norm — for keyword sets with
// duplicates and unknown words, across many reuses of one scratch.
func TestPrepareQueryIntoMatchesPrepareQuery(t *testing.T) {
	v, words := scratchCorpus(t)
	rng := rand.New(rand.NewSource(8))
	var scratch QueryScratch
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(6)
		kws := make([]string, 0, n+2)
		for i := 0; i < n; i++ {
			kws = append(kws, words[rng.Intn(len(words))])
		}
		if rng.Intn(2) == 0 {
			kws = append(kws, "unknownword")
		}
		if n > 0 && rng.Intn(2) == 0 {
			kws = append(kws, kws[0]) // force a duplicate
		}
		want := v.PrepareQuery(kws)
		got := v.PrepareQueryInto(kws, &scratch)
		if len(got.Terms) != len(want.Terms) || got.Norm != want.Norm {
			t.Fatalf("trial %d %v: got %d terms norm %v, want %d terms norm %v",
				trial, kws, len(got.Terms), got.Norm, len(want.Terms), want.Norm)
		}
		for i := range want.Terms {
			if got.Terms[i] != want.Terms[i] || got.IDF[i] != want.IDF[i] {
				t.Fatalf("trial %d %v term %d: got (%d, %v), want (%d, %v)",
					trial, kws, i, got.Terms[i], got.IDF[i], want.Terms[i], want.IDF[i])
			}
		}
	}
}

// TestPrepareQueryIntoAliasing documents the ownership contract: a second
// call on the same scratch invalidates the first result.
func TestPrepareQueryIntoAliasing(t *testing.T) {
	v, words := scratchCorpus(t)
	var scratch QueryScratch
	first := v.PrepareQueryInto([]string{words[0], words[1]}, &scratch)
	if len(first.Terms) != 2 {
		t.Fatalf("first query has %d terms", len(first.Terms))
	}
	v.PrepareQueryInto([]string{words[5]}, &scratch)
	if first.Terms[0] != v.Lookup(words[5]) {
		t.Fatalf("expected scratch reuse to overwrite the first result's terms")
	}
}

func BenchmarkPrepareQuery(b *testing.B) {
	v, words := scratchCorpus(b)
	kws := []string{words[0], words[3], words[7]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if q := v.PrepareQuery(kws); len(q.Terms) != 3 {
			b.Fatal("bad query")
		}
	}
}

func BenchmarkPrepareQueryInto(b *testing.B) {
	v, words := scratchCorpus(b)
	kws := []string{words[0], words[3], words[7]}
	var scratch QueryScratch
	v.PrepareQueryInto(kws, &scratch) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if q := v.PrepareQueryInto(kws, &scratch); len(q.Terms) != 3 {
			b.Fatal("bad query")
		}
	}
}
