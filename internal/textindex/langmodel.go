package textindex

import (
	"math"
	"sort"
)

// §3 of the paper: "We use the vector space model (other models can also
// be used, e.g., the language model [13])". This file provides that
// alternative: Ponte–Croft style query-likelihood scoring with Dirichlet
// smoothing. The score used as an object weight is the matching-term
// component of the log likelihood ratio,
//
//	σ_LM(o, Q) = Σ_{t ∈ Q.ψ ∩ o.ψ} ln(1 + tf_{t,o} / (µ · P(t|C)))
//
// which is non-negative, zero exactly when no query term occurs in o.ψ,
// and increases with term frequency and term rarity — the properties the
// LCMSR weighting needs (§2). P(t|C) is the collection language model
// (collection frequency over total tokens) and µ the Dirichlet pseudo-
// count (2000 by default, the classic IR setting).

// DefaultDirichletMu is the default smoothing pseudo-count.
const DefaultDirichletMu = 2000.0

// collection statistics needed by the language model are tracked by
// Vocabulary alongside the document frequencies: cf (collection frequency
// per term) and totalTokens.

// CollectionFreq returns cf_t, the number of occurrences of the term
// across all indexed documents (0 for unknown ids).
func (v *Vocabulary) CollectionFreq(id TermID) int {
	if id < 0 || int(id) >= len(v.cf) {
		return 0
	}
	return int(v.cf[id])
}

// TotalTokens returns the total number of term occurrences indexed.
func (v *Vocabulary) TotalTokens() int { return v.totalTokens }

// LMQuery is a preprocessed keyword query for language-model scoring.
type LMQuery struct {
	Terms []TermID  // sorted ascending; unknown keywords dropped
	muPC  []float64 // µ·P(t|C) per term, parallel to Terms
}

// PrepareLMQuery builds an LMQuery with the given Dirichlet µ (zero
// selects DefaultDirichletMu). Keywords absent from the corpus can never
// match and are dropped.
func (v *Vocabulary) PrepareLMQuery(keywords []string, mu float64) LMQuery {
	if mu <= 0 {
		mu = DefaultDirichletMu
	}
	seen := make(map[TermID]bool, len(keywords))
	var q LMQuery
	for _, kw := range keywords {
		id := v.Lookup(kw)
		if id < 0 || seen[id] || v.CollectionFreq(id) == 0 {
			continue
		}
		seen[id] = true
		q.Terms = append(q.Terms, id)
	}
	sort.Slice(q.Terms, func(i, j int) bool { return q.Terms[i] < q.Terms[j] })
	total := float64(v.TotalTokens())
	q.muPC = make([]float64, len(q.Terms))
	for i, t := range q.Terms {
		q.muPC[i] = mu * float64(v.CollectionFreq(t)) / total
	}
	return q
}

// Score computes σ_LM(o, Q) for a document.
func (q LMQuery) Score(d *Doc) float64 {
	if len(q.Terms) == 0 || len(d.Terms) == 0 {
		return 0
	}
	var sum float64
	i, j := 0, 0
	for i < len(q.Terms) && j < len(d.Terms) {
		switch {
		case q.Terms[i] < d.Terms[j]:
			i++
		case q.Terms[i] > d.Terms[j]:
			j++
		default:
			tf := float64(d.TF[j])
			sum += math.Log(1 + tf/q.muPC[i])
			i++
			j++
		}
	}
	return sum
}
