package textindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file is the vocabulary's live-update and persistence surface: the
// corpus statistics (f_t, cf, |D|, Σcf) must track object inserts and
// deletes exactly, or query-side IDF weights drift away from what a full
// rebuild would compute — the differential harness compares the two
// bit-for-bit. Deletes keep |D| unchanged by design: a rebuild models a
// deleted object as a still-counted document with an empty description
// (IndexDoc with no tokens), which keeps every later ObjectID — and every
// IDF ratio |D|/f_t — identical between the live database and the rebuild.

// RemoveDocStats retracts a previously indexed document's term statistics:
// df and cf drop by the document's contribution and the token total
// shrinks, while |D| stays (see the deleted-object model above). The Doc
// must be the one IndexDoc returned for the object.
func (v *Vocabulary) RemoveDocStats(d Doc) {
	for i, t := range d.Terms {
		v.df[t]--
		v.cf[t] -= d.TF[i]
		v.totalTokens -= int(d.TF[i])
	}
}

// AddDocStats re-applies a document's term statistics — the WAL-replay
// counterpart of the statistics side of IndexDoc (terms must already be
// interned; see EnsureTerm). It raises |D| like IndexDoc does.
func (v *Vocabulary) AddDocStats(d Doc) {
	for i, t := range d.Terms {
		v.df[t]++
		v.cf[t] += d.TF[i]
		v.totalTokens += int(d.TF[i])
	}
	v.docs++
}

// UndoIndexDoc rolls back a just-made IndexDoc call whose object failed to
// be stored: term statistics and |D| return to their prior values. The
// interned term strings stay — an interned term with zero df contributes
// zero to every score, exactly like an unknown term.
func (v *Vocabulary) UndoIndexDoc(d Doc) {
	v.RemoveDocStats(d)
	v.docs--
}

// EnsureTerm interns term and verifies it lands on (or already has) the
// given id. WAL replay carries each inserted term's id alongside its
// string; since ids were assigned in operation order, replaying in
// sequence order reproduces them exactly — any mismatch means the log and
// the vocabulary snapshot disagree, which is corruption, not a state to
// continue from.
func (v *Vocabulary) EnsureTerm(term string, id TermID) error {
	got := v.Intern(term)
	if got != id {
		return fmt.Errorf("textindex: term %q interned as id %d, log says %d", term, got, id)
	}
	return nil
}

// errBadSnapshot marks an unreadable vocabulary snapshot.
var errBadSnapshot = errors.New("textindex: corrupt vocabulary snapshot")

// vocabSnapshotMagic versions the snapshot encoding.
const vocabSnapshotMagic = "LCVOCAB1"

// EncodeSnapshot serializes the vocabulary — terms in id order with their
// df/cf and the corpus totals — so a reopened store can restore exact IDF
// weights without re-deriving them from objects. The encoding is
// deterministic: equal vocabularies produce equal bytes.
func (v *Vocabulary) EncodeSnapshot() []byte {
	size := len(vocabSnapshotMagic) + 8 + 8 + 4
	for _, t := range v.terms {
		size += 2 + len(t) + 4 + 4
	}
	out := make([]byte, 0, size)
	out = append(out, vocabSnapshotMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(v.docs))
	out = binary.LittleEndian.AppendUint64(out, uint64(v.totalTokens))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(v.terms)))
	for id, t := range v.terms {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(t)))
		out = append(out, t...)
		out = binary.LittleEndian.AppendUint32(out, uint32(v.df[id]))
		out = binary.LittleEndian.AppendUint32(out, uint32(v.cf[id]))
	}
	return out
}

// DecodeVocabulary rebuilds a vocabulary from EncodeSnapshot output.
func DecodeVocabulary(b []byte) (*Vocabulary, error) {
	r := snapReader{b: b}
	if string(r.bytes(len(vocabSnapshotMagic))) != vocabSnapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", errBadSnapshot)
	}
	docs := r.u64()
	total := r.u64()
	n := r.u32()
	if r.err != nil || n > math.MaxInt32 {
		return nil, fmt.Errorf("%w: header", errBadSnapshot)
	}
	v := NewVocabulary()
	v.docs = int(docs)
	v.totalTokens = int(total)
	v.terms = make([]string, 0, n)
	v.df = make([]int32, 0, n)
	v.cf = make([]int32, 0, n)
	for i := uint32(0); i < n; i++ {
		term := string(r.bytes(int(r.u16())))
		df := r.u32()
		cf := r.u32()
		if r.err != nil {
			return nil, fmt.Errorf("%w: term %d", errBadSnapshot, i)
		}
		if _, dup := v.ids[term]; dup {
			return nil, fmt.Errorf("%w: duplicate term %q", errBadSnapshot, term)
		}
		v.ids[term] = TermID(len(v.terms))
		v.terms = append(v.terms, term)
		v.df = append(v.df, int32(df))
		v.cf = append(v.cf, int32(cf))
	}
	if r.err != nil || len(r.b) != r.off {
		return nil, fmt.Errorf("%w: trailing bytes", errBadSnapshot)
	}
	return v, nil
}

// snapReader is a bounds-checked little-endian cursor; after any short
// read it sticks in the error state and returns zeros.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		if r.err == nil {
			r.err = errBadSnapshot
		}
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *snapReader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *snapReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
