package textindex

import (
	"testing"
)

// TestRemoveDocStatsMatchesRebuild: indexing docs A,B then removing B must
// leave the exact statistics of indexing A plus an empty placeholder doc —
// the deleted-object model the differential harness relies on.
func TestRemoveDocStatsMatchesRebuild(t *testing.T) {
	live := NewVocabulary()
	docA := live.IndexDoc([]string{"cafe", "bar", "cafe"})
	docB := live.IndexDoc([]string{"bar", "museum"})
	_ = docA
	live.RemoveDocStats(docB)

	rebuilt := NewVocabulary()
	rebuilt.IndexDoc([]string{"cafe", "bar", "cafe"})
	rebuilt.IndexDoc(nil) // deleted object: counted, empty

	// B's terms must be interned in both (with df possibly 0); intern them
	// in the rebuild the same way the live side did.
	rebuilt.Intern("bar")
	rebuilt.Intern("museum")

	if live.NumDocs() != rebuilt.NumDocs() {
		t.Fatalf("|D|: live %d, rebuilt %d", live.NumDocs(), rebuilt.NumDocs())
	}
	for _, term := range []string{"cafe", "bar", "museum"} {
		li, ri := live.Lookup(term), rebuilt.Lookup(term)
		if live.DocFreq(li) != rebuilt.DocFreq(ri) {
			t.Errorf("df[%s]: live %d, rebuilt %d", term, live.DocFreq(li), rebuilt.DocFreq(ri))
		}
		if live.IDF(li) != rebuilt.IDF(ri) {
			t.Errorf("IDF[%s]: live %v, rebuilt %v", term, live.IDF(li), rebuilt.IDF(ri))
		}
	}
	if live.totalTokens != rebuilt.totalTokens {
		t.Errorf("totalTokens: live %d, rebuilt %d", live.totalTokens, rebuilt.totalTokens)
	}
}

func TestAddDocStatsInvertsRemove(t *testing.T) {
	v := NewVocabulary()
	v.IndexDoc([]string{"a", "b"})
	doc := v.IndexDoc([]string{"b", "c", "c"})
	docsBefore := v.NumDocs()
	dfB, dfC := v.DocFreq(v.Lookup("b")), v.DocFreq(v.Lookup("c"))

	v.RemoveDocStats(doc)
	v.AddDocStats(doc)

	if v.NumDocs() != docsBefore+1 {
		t.Fatalf("|D| = %d, want %d (AddDocStats counts a document)", v.NumDocs(), docsBefore+1)
	}
	if got := v.DocFreq(v.Lookup("b")); got != dfB {
		t.Errorf("df[b] = %d, want %d", got, dfB)
	}
	if got := v.DocFreq(v.Lookup("c")); got != dfC {
		t.Errorf("df[c] = %d, want %d", got, dfC)
	}
}

func TestUndoIndexDoc(t *testing.T) {
	v := NewVocabulary()
	v.IndexDoc([]string{"keep"})
	docs, total := v.NumDocs(), v.totalTokens
	doc := v.IndexDoc([]string{"gone", "keep"})
	v.UndoIndexDoc(doc)
	if v.NumDocs() != docs || v.totalTokens != total {
		t.Fatalf("UndoIndexDoc left |D|=%d tokens=%d, want %d/%d", v.NumDocs(), v.totalTokens, docs, total)
	}
	if v.DocFreq(v.Lookup("keep")) != 1 {
		t.Fatal("UndoIndexDoc damaged another document's df")
	}
	// The term string stays interned with zero df — weight 0 everywhere.
	if id := v.Lookup("gone"); id < 0 || v.IDF(id) != 0 {
		t.Fatalf("rolled-back term: id %d IDF %v, want interned with IDF 0", v.Lookup("gone"), v.IDF(v.Lookup("gone")))
	}
}

func TestEnsureTerm(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("a")
	if err := v.EnsureTerm("a", a); err != nil {
		t.Fatalf("EnsureTerm existing: %v", err)
	}
	if err := v.EnsureTerm("b", TermID(v.NumTerms())); err != nil {
		t.Fatalf("EnsureTerm next: %v", err)
	}
	if err := v.EnsureTerm("c", 99); err == nil {
		t.Fatal("EnsureTerm must reject a mismatched id")
	}
}

func TestVocabularySnapshotRoundTrip(t *testing.T) {
	v := NewVocabulary()
	v.IndexDoc([]string{"cafe", "bar", "cafe"})
	v.IndexDoc([]string{"bar", "museum", "park", "park"})
	doc := v.IndexDoc([]string{"museum"})
	v.RemoveDocStats(doc)

	got, err := DecodeVocabulary(v.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != v.NumDocs() || got.NumTerms() != v.NumTerms() || got.totalTokens != v.totalTokens {
		t.Fatalf("totals differ: got |D|=%d terms=%d tokens=%d", got.NumDocs(), got.NumTerms(), got.totalTokens)
	}
	for id := 0; id < v.NumTerms(); id++ {
		tid := TermID(id)
		if got.Term(tid) != v.Term(tid) || got.DocFreq(tid) != v.DocFreq(tid) || got.cf[tid] != v.cf[tid] {
			t.Fatalf("term %d differs after round trip", id)
		}
		if got.IDF(tid) != v.IDF(tid) {
			t.Fatalf("IDF[%d] differs after round trip", id)
		}
	}
	// Determinism: equal vocabularies, equal bytes.
	if string(v.EncodeSnapshot()) != string(got.EncodeSnapshot()) {
		t.Fatal("snapshot encoding is not deterministic")
	}
}

func TestDecodeVocabularyRejectsCorruption(t *testing.T) {
	v := NewVocabulary()
	v.IndexDoc([]string{"alpha", "beta"})
	good := v.EncodeSnapshot()
	cases := map[string][]byte{
		"bad magic": append([]byte("XXXXXXXX"), good[8:]...),
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte(nil), good...), 0xff),
	}
	for name, img := range cases {
		if _, err := DecodeVocabulary(img); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}
