package textindex

import (
	"math/rand"
	"testing"
)

func BenchmarkScore(b *testing.B) {
	v := NewVocabulary()
	rng := rand.New(rand.NewSource(2))
	vocab := make([]string, 500)
	for i := range vocab {
		vocab[i] = Termish(i)
	}
	docs := make([]Doc, 1000)
	for i := range docs {
		toks := []string{vocab[rng.Intn(500)], vocab[rng.Intn(500)], vocab[rng.Intn(500)]}
		docs[i] = v.IndexDoc(toks)
	}
	q := v.PrepareQuery([]string{vocab[0], vocab[1], vocab[2]})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Score(&docs[i%1000])
	}
}

// Termish makes a deterministic fake term.
func Termish(i int) string {
	return string([]byte{byte('a' + i%26), byte('a' + (i/26)%26), byte('a' + (i/676)%26)})
}
