// Package textindex implements the information-retrieval machinery of §3 of
// the paper: the vector space model of Zobel & Moffat with the exact TF/IDF
// weighting of Equation (1), the per-object normalized term weights wto of
// Equation (2), and the corpus statistics (document frequency f_t, |D|)
// they depend on. The grid index (package grid) stores these term weights
// in its per-cell inverted lists so that query-time scoring only multiplies
// precomputed factors.
//
// # Invariants and ownership rules
//
// A Vocabulary is mutable only while documents are indexed (IndexDoc); once
// a dataset is assembled it is read-only and safe for concurrent use by any
// number of query workers. Doc and Query keep their term lists sorted by
// ascending TermID — every scoring routine (Query.Score, LMQuery.Score,
// grid.Index search) relies on that order for merge-joins and for
// deterministic floating-point accumulation.
//
// Query preparation comes in two flavors with identical results:
//
//   - PrepareQuery allocates a fresh Query per call; the result is owned by
//     the caller and never mutated afterwards.
//   - PrepareQueryInto writes into a caller-owned QueryScratch and returns
//     a Query aliasing the scratch buffers. The Query is valid only until
//     the next PrepareQueryInto call on the same scratch; pool one scratch
//     per worker (dataset.Planner does) and steady-state preparation
//     performs zero allocations.
package textindex

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
)

// TermID identifies a vocabulary term. IDs are dense, 0..NumTerms-1.
type TermID int32

// Vocabulary interns term strings to dense TermIDs and tracks document
// frequencies. It is append-only: terms are added as documents are indexed.
type Vocabulary struct {
	ids         map[string]TermID
	terms       []string
	df          []int32 // f_t: number of documents containing term t
	cf          []int32 // collection frequency (total occurrences), for the LM
	docs        int     // |D|
	totalTokens int     // Σ cf, for the LM
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]TermID)}
}

// Intern returns the TermID for term, creating it if needed.
func (v *Vocabulary) Intern(term string) TermID {
	if id, ok := v.ids[term]; ok {
		return id
	}
	id := TermID(len(v.terms))
	v.ids[term] = id
	v.terms = append(v.terms, term)
	v.df = append(v.df, 0)
	v.cf = append(v.cf, 0)
	return id
}

// Lookup returns the TermID for term, or -1 if the term is unknown.
func (v *Vocabulary) Lookup(term string) TermID {
	if id, ok := v.ids[term]; ok {
		return id
	}
	return -1
}

// Term returns the string for a TermID.
func (v *Vocabulary) Term(id TermID) string { return v.terms[id] }

// NumTerms returns the number of distinct terms.
func (v *Vocabulary) NumTerms() int { return len(v.terms) }

// NumDocs returns |D|, the number of indexed documents.
func (v *Vocabulary) NumDocs() int { return v.docs }

// DocFreq returns f_t for a term (0 for unknown ids).
func (v *Vocabulary) DocFreq(id TermID) int {
	if id < 0 || int(id) >= len(v.df) {
		return 0
	}
	return int(v.df[id])
}

// IDF returns the query-side weight w_{Q.ψ,t} = ln(1 + |D|/f_t) of
// Equation (1). Terms that appear in no document get weight 0.
func (v *Vocabulary) IDF(id TermID) float64 {
	ft := v.DocFreq(id)
	if ft == 0 {
		return 0
	}
	return math.Log(1 + float64(v.docs)/float64(ft))
}

// Doc is an indexed text description: the distinct terms of o.ψ with their
// normalized term weights wto(t) = w_{o.ψ,t} / W_{o.ψ} (Equation 2).
type Doc struct {
	Terms   []TermID  // sorted ascending
	Weights []float64 // wto, parallel to Terms
	TF      []int32   // raw term frequencies, parallel to Terms (for the LM)
}

// Weight returns wto(t) for the document, or 0 if t does not occur.
func (d *Doc) Weight(t TermID) float64 {
	i := sort.Search(len(d.Terms), func(i int) bool { return d.Terms[i] >= t })
	if i < len(d.Terms) && d.Terms[i] == t {
		return d.Weights[i]
	}
	return 0
}

// Has reports whether term t occurs in the document.
func (d *Doc) Has(t TermID) bool {
	i := sort.Search(len(d.Terms), func(i int) bool { return d.Terms[i] >= t })
	return i < len(d.Terms) && d.Terms[i] == t
}

// IndexDoc registers one object description with the vocabulary (raising
// document frequencies and |D|) and returns its Doc with normalized term
// weights. The tokens are raw terms, possibly repeated; term frequency
// tf_{t,o.ψ} is their multiplicity. Empty token lists produce an empty Doc.
func (v *Vocabulary) IndexDoc(tokens []string) Doc {
	if len(tokens) == 0 {
		v.docs++
		return Doc{}
	}
	tf := make(map[TermID]int, len(tokens))
	for _, tok := range tokens {
		if tok == "" {
			continue
		}
		tf[v.Intern(tok)]++
	}
	terms := make([]TermID, 0, len(tf))
	for t := range tf {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })

	// w_{o.ψ,t} = 1 + ln tf  (Equation 1), then normalize by the vector
	// norm W_{o.ψ} to get wto (Equation 2).
	raw := make([]float64, len(terms))
	tfs := make([]int32, len(terms))
	var norm2 float64
	for i, t := range terms {
		raw[i] = 1 + math.Log(float64(tf[t]))
		norm2 += raw[i] * raw[i]
		v.df[t]++
		v.cf[t] += int32(tf[t])
		v.totalTokens += tf[t]
		tfs[i] = int32(tf[t])
	}
	v.docs++
	norm := math.Sqrt(norm2)
	weights := make([]float64, len(terms))
	for i := range raw {
		weights[i] = raw[i] / norm
	}
	return Doc{Terms: terms, Weights: weights, TF: tfs}
}

// Query is a preprocessed keyword query: distinct query terms with their
// IDF weights and the query vector norm W_{Q.ψ}.
type Query struct {
	Terms []TermID  // sorted ascending; unknown keywords are dropped
	IDF   []float64 // w_{Q.ψ,t}, parallel to Terms
	Norm  float64   // W_{Q.ψ}
}

// PrepareQuery builds a Query from raw keywords. Keywords not present in
// the corpus contribute nothing to any score (their f_t is 0) and are
// dropped; duplicated keywords are collapsed. As in Equation (1), the query
// term frequency is taken as 1 per distinct keyword.
func (v *Vocabulary) PrepareQuery(keywords []string) Query {
	seen := make(map[TermID]bool, len(keywords))
	var q Query
	for _, kw := range keywords {
		id := v.Lookup(kw)
		if id < 0 || seen[id] {
			continue
		}
		seen[id] = true
		q.Terms = append(q.Terms, id)
	}
	sort.Slice(q.Terms, func(i, j int) bool { return q.Terms[i] < q.Terms[j] })
	var norm2 float64
	q.IDF = make([]float64, len(q.Terms))
	for i, t := range q.Terms {
		q.IDF[i] = v.IDF(t)
		norm2 += q.IDF[i] * q.IDF[i]
	}
	q.Norm = math.Sqrt(norm2)
	return q
}

// QueryScratch is pooled storage for PrepareQueryInto. The zero value is
// ready to use. A scratch serves one prepared query at a time and is not
// safe for concurrent use; pool one per worker.
type QueryScratch struct {
	terms []TermID
	idf   []float64
}

// PrepareQueryInto is PrepareQuery with caller-owned scratch: it returns a
// Query identical to PrepareQuery(keywords) whose Terms and IDF slices alias
// s. The result is valid only until the next PrepareQueryInto call on the
// same scratch. Steady state performs zero allocations — duplicates are
// collapsed by a linear scan over the (small) distinct-term list instead of
// a map.
func (v *Vocabulary) PrepareQueryInto(keywords []string, s *QueryScratch) Query {
	s.terms = s.terms[:0]
	for _, kw := range keywords {
		id := v.Lookup(kw)
		if id < 0 || slices.Contains(s.terms, id) {
			continue
		}
		s.terms = append(s.terms, id)
	}
	slices.Sort(s.terms)
	if cap(s.idf) < len(s.terms) {
		s.idf = make([]float64, len(s.terms))
	}
	s.idf = s.idf[:len(s.terms)]
	var norm2 float64
	for i, t := range s.terms {
		s.idf[i] = v.IDF(t)
		norm2 += s.idf[i] * s.idf[i]
	}
	q := Query{IDF: s.idf, Norm: math.Sqrt(norm2)}
	if len(s.terms) > 0 {
		q.Terms = s.terms
	}
	return q
}

// FNV-1a constants for Query.Signature (FNV-0 64-bit offset basis and
// prime, Fowler/Noll/Vo).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Signature returns a 64-bit FNV-1a hash of the query's term IDs in
// order. It identifies a prepared query for caching: two queries over the
// same vocabulary with equal Terms always produce equal signatures, and
// the hash allocates nothing. It is a hash, not an identity — caches
// keyed by it must verify the full term list (and the IDF weights, which
// can drift as documents are indexed) before trusting an entry.
func (q Query) Signature() uint64 {
	h := uint64(fnvOffset64)
	for _, t := range q.Terms {
		x := uint32(t)
		h = (h ^ uint64(x&0xff)) * fnvPrime64
		h = (h ^ uint64(x>>8&0xff)) * fnvPrime64
		h = (h ^ uint64(x>>16&0xff)) * fnvPrime64
		h = (h ^ uint64(x>>24)) * fnvPrime64
	}
	return h
}

// Score computes σ(o.ψ, Q.ψ) for a document under the query, exactly as
// Equation (2): (1/W_{Q.ψ}) Σ_{t ∈ Q.ψ ∩ o.ψ} w_{Q.ψ,t} · wto(t).
func (q Query) Score(d *Doc) float64 {
	if q.Norm == 0 || len(d.Terms) == 0 {
		return 0
	}
	var sum float64
	// Merge-join the two sorted term lists.
	i, j := 0, 0
	for i < len(q.Terms) && j < len(d.Terms) {
		switch {
		case q.Terms[i] < d.Terms[j]:
			i++
		case q.Terms[i] > d.Terms[j]:
			j++
		default:
			sum += q.IDF[i] * d.Weights[j]
			i++
			j++
		}
	}
	return sum / q.Norm
}

// Tokenize splits a free-text description into lowercase terms on
// non-alphanumeric boundaries. It is deliberately simple: the paper uses
// place names/types (NY) and photo tags (USANW) as the text descriptions.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	})
	return fields
}

// String implements fmt.Stringer for debugging.
func (q Query) String() string {
	return fmt.Sprintf("Query{%d terms, norm=%.4f}", len(q.Terms), q.Norm)
}
