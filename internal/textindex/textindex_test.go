package textindex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInternLookup(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("cafe")
	b := v.Intern("restaurant")
	if a == b {
		t.Fatal("distinct terms share an id")
	}
	if v.Intern("cafe") != a {
		t.Error("Intern is not idempotent")
	}
	if v.Lookup("cafe") != a || v.Lookup("missing") != -1 {
		t.Error("Lookup wrong")
	}
	if v.Term(a) != "cafe" {
		t.Error("Term round trip failed")
	}
	if v.NumTerms() != 2 {
		t.Errorf("NumTerms = %d, want 2", v.NumTerms())
	}
}

func TestIndexDocStats(t *testing.T) {
	v := NewVocabulary()
	v.IndexDoc([]string{"cafe", "cafe", "bar"})
	v.IndexDoc([]string{"cafe"})
	v.IndexDoc([]string{"pizza"})
	if v.NumDocs() != 3 {
		t.Errorf("|D| = %d, want 3", v.NumDocs())
	}
	if v.DocFreq(v.Lookup("cafe")) != 2 {
		t.Errorf("df(cafe) = %d, want 2 (multiplicity within one doc counts once)", v.DocFreq(v.Lookup("cafe")))
	}
	if v.DocFreq(v.Lookup("bar")) != 1 {
		t.Errorf("df(bar) = %d, want 1", v.DocFreq(v.Lookup("bar")))
	}
	if v.DocFreq(-1) != 0 || v.DocFreq(999) != 0 {
		t.Error("DocFreq out of range should be 0")
	}
}

func TestIDFEquation1(t *testing.T) {
	v := NewVocabulary()
	v.IndexDoc([]string{"a"})
	v.IndexDoc([]string{"a", "b"})
	// |D| = 2, f_a = 2, f_b = 1.
	wantA := math.Log(1 + 2.0/2.0)
	wantB := math.Log(1 + 2.0/1.0)
	if got := v.IDF(v.Lookup("a")); math.Abs(got-wantA) > 1e-12 {
		t.Errorf("IDF(a) = %v, want %v", got, wantA)
	}
	if got := v.IDF(v.Lookup("b")); math.Abs(got-wantB) > 1e-12 {
		t.Errorf("IDF(b) = %v, want %v", got, wantB)
	}
}

func TestDocWeightsNormalized(t *testing.T) {
	v := NewVocabulary()
	d := v.IndexDoc([]string{"x", "x", "x", "y"})
	var norm2 float64
	for _, w := range d.Weights {
		norm2 += w * w
	}
	if math.Abs(norm2-1) > 1e-12 {
		t.Errorf("‖wto‖² = %v, want 1", norm2)
	}
	// tf(x)=3 > tf(y)=1 so weight(x) > weight(y).
	if d.Weight(v.Lookup("x")) <= d.Weight(v.Lookup("y")) {
		t.Error("higher-tf term should have higher normalized weight")
	}
	if d.Weight(v.Intern("unseen")) != 0 {
		t.Error("weight of absent term must be 0")
	}
	if !d.Has(v.Lookup("x")) || d.Has(v.Intern("zz")) {
		t.Error("Has wrong")
	}
}

// Cross-check Score against a direct evaluation of Equation (1): the
// factored Equation (2) must give the same number.
func TestScoreMatchesEquation1(t *testing.T) {
	v := NewVocabulary()
	docs := [][]string{
		{"cafe", "italian", "restaurant"},
		{"cafe", "cafe", "espresso"},
		{"museum"},
		{"restaurant", "steak", "bar", "bar"},
	}
	var indexed []Doc
	for _, d := range docs {
		indexed = append(indexed, v.IndexDoc(d))
	}
	q := v.PrepareQuery([]string{"cafe", "restaurant"})

	// Direct Equation (1) evaluation.
	direct := func(tokens []string) float64 {
		tf := map[string]int{}
		for _, tok := range tokens {
			tf[tok]++
		}
		var wq, wo map[string]float64
		wq = map[string]float64{}
		for _, kw := range []string{"cafe", "restaurant"} {
			ft := v.DocFreq(v.Lookup(kw))
			if ft > 0 {
				wq[kw] = math.Log(1 + float64(v.NumDocs())/float64(ft))
			}
		}
		wo = map[string]float64{}
		for tok, f := range tf {
			wo[tok] = 1 + math.Log(float64(f))
		}
		var wQ, wO float64
		for _, w := range wq {
			wQ += w * w
		}
		for _, w := range wo {
			wO += w * w
		}
		wQ, wO = math.Sqrt(wQ), math.Sqrt(wO)
		var sum float64
		for tok := range wq {
			if _, ok := tf[tok]; ok {
				sum += wq[tok] * wo[tok]
			}
		}
		if wQ == 0 || wO == 0 {
			return 0
		}
		return sum / (wQ * wO)
	}

	for i, d := range docs {
		want := direct(d)
		got := q.Score(&indexed[i])
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("doc %d: Score = %v, direct Eq.(1) = %v", i, got, want)
		}
	}
}

func TestScoreProperties(t *testing.T) {
	v := NewVocabulary()
	var ds []Doc
	vocab := []string{"a", "b", "c", "d", "e", "f"}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(4)
		toks := make([]string, n)
		for j := range toks {
			toks[j] = vocab[rng.Intn(len(vocab))]
		}
		ds = append(ds, v.IndexDoc(toks))
	}
	f := func(qa, qb uint8) bool {
		q := v.PrepareQuery([]string{vocab[int(qa)%len(vocab)], vocab[int(qb)%len(vocab)]})
		for i := range ds {
			s := q.Score(&ds[i])
			if s < 0 || s > 1+1e-9 || math.IsNaN(s) {
				return false // cosine similarity must be in [0,1]
			}
			// Score is zero iff no query term occurs in the doc.
			any := false
			for _, t := range q.Terms {
				if ds[i].Has(t) {
					any = true
				}
			}
			if any != (s > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPrepareQueryDedupAndUnknown(t *testing.T) {
	v := NewVocabulary()
	v.IndexDoc([]string{"cafe"})
	q := v.PrepareQuery([]string{"cafe", "cafe", "neverseen"})
	if len(q.Terms) != 1 {
		t.Fatalf("query terms = %d, want 1", len(q.Terms))
	}
	if q.Norm <= 0 {
		t.Error("norm must be positive for a known keyword")
	}
	empty := v.PrepareQuery([]string{"neverseen"})
	if len(empty.Terms) != 0 || empty.Norm != 0 {
		t.Error("all-unknown query should be empty")
	}
	d := v.IndexDoc([]string{"cafe"})
	if empty.Score(&d) != 0 {
		t.Error("empty query must score 0")
	}
}

func TestEmptyDoc(t *testing.T) {
	v := NewVocabulary()
	d := v.IndexDoc(nil)
	if len(d.Terms) != 0 {
		t.Error("nil tokens should make empty doc")
	}
	if v.NumDocs() != 1 {
		t.Error("empty doc must still count toward |D|")
	}
	d2 := v.IndexDoc([]string{""})
	if len(d2.Terms) != 0 {
		t.Error("empty-string token should be skipped")
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Joe's Pizza & Café-25, NY!")
	want := []string{"joe", "s", "pizza", "caf", "25", "ny"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
}

func TestHigherDFLowersScore(t *testing.T) {
	// The rarer keyword should dominate a mixed query: classic IDF sanity.
	v := NewVocabulary()
	for i := 0; i < 99; i++ {
		v.IndexDoc([]string{"common"})
	}
	v.IndexDoc([]string{"rare"})
	dCommon := v.IndexDoc([]string{"common"})
	dRare := v.IndexDoc([]string{"rare"})
	q := v.PrepareQuery([]string{"common", "rare"})
	if q.Score(&dRare) <= q.Score(&dCommon) {
		t.Errorf("rare-term doc scored %v, common-term doc %v; want rare > common",
			q.Score(&dRare), q.Score(&dCommon))
	}
}

func TestCollectionStats(t *testing.T) {
	v := NewVocabulary()
	v.IndexDoc([]string{"a", "a", "b"})
	v.IndexDoc([]string{"a"})
	if v.TotalTokens() != 4 {
		t.Errorf("total tokens = %d, want 4", v.TotalTokens())
	}
	if v.CollectionFreq(v.Lookup("a")) != 3 || v.CollectionFreq(v.Lookup("b")) != 1 {
		t.Error("collection frequencies wrong")
	}
	if v.CollectionFreq(-1) != 0 || v.CollectionFreq(99) != 0 {
		t.Error("out-of-range cf should be 0")
	}
}

func TestLMQueryScore(t *testing.T) {
	v := NewVocabulary()
	for i := 0; i < 50; i++ {
		v.IndexDoc([]string{"common"})
	}
	v.IndexDoc([]string{"rare"})
	dCommon := v.IndexDoc([]string{"common"})
	dRare := v.IndexDoc([]string{"rare"})
	dNone := v.IndexDoc([]string{"other"})
	q := v.PrepareLMQuery([]string{"common", "rare"}, 100)
	if got := q.Score(&dNone); got != 0 {
		t.Errorf("no-match LM score = %v, want 0", got)
	}
	sc, sr := q.Score(&dCommon), q.Score(&dRare)
	if sc <= 0 || sr <= 0 {
		t.Fatalf("matching docs must score positive: %v, %v", sc, sr)
	}
	// The rare term has lower P(t|C), hence a larger boost.
	if sr <= sc {
		t.Errorf("rare-term doc %v should outscore common-term doc %v", sr, sc)
	}
}

func TestLMQueryTFMonotone(t *testing.T) {
	v := NewVocabulary()
	for i := 0; i < 20; i++ {
		v.IndexDoc([]string{"x", "filler"})
	}
	d1 := v.IndexDoc([]string{"x"})
	d3 := v.IndexDoc([]string{"x", "x", "x"})
	q := v.PrepareLMQuery([]string{"x"}, 0) // default µ
	if q.Score(&d3) <= q.Score(&d1) {
		t.Errorf("higher tf must score higher: tf3=%v tf1=%v", q.Score(&d3), q.Score(&d1))
	}
}

func TestLMQueryUnknownKeywords(t *testing.T) {
	v := NewVocabulary()
	v.IndexDoc([]string{"a"})
	q := v.PrepareLMQuery([]string{"never", "never2"}, 0)
	if len(q.Terms) != 0 {
		t.Error("unknown keywords must be dropped")
	}
	d := v.IndexDoc([]string{"a"})
	if q.Score(&d) != 0 {
		t.Error("empty LM query must score 0")
	}
}
