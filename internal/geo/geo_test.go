package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDistSymmetricAndNonNegative(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		p, q := Point{ax, ay}, Point{bx, by}
		d1, d2 := p.Dist(q), q.Dist(p)
		return d1 == d2 && (d1 >= 0 || math.IsInf(d1, 1) || math.IsNaN(d1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{5, 7}, Point{1, 2})
	want := Rect{1, 2, 5, 7}
	if r != want {
		t.Errorf("NewRect = %+v, want %+v", r, want)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) || !r.Contains(Point{5, 5}) {
		t.Error("boundary or interior point not contained")
	}
	if r.Contains(Point{10.001, 5}) || r.Contains(Point{-0.001, 5}) {
		t.Error("exterior point contained")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{5, 5, 15, 15}, true},
		{Rect{10, 10, 20, 20}, true}, // touching corner counts
		{Rect{11, 11, 20, 20}, false},
		{Rect{-5, -5, -1, -1}, false},
		{Rect{2, 2, 3, 3}, true}, // fully inside
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.b)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	got, ok := a.Intersect(Rect{5, 5, 15, 15})
	if !ok || got != (Rect{5, 5, 10, 10}) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := a.Intersect(Rect{20, 20, 30, 30}); ok {
		t.Error("disjoint rectangles reported intersecting")
	}
}

func TestRectAroundArea(t *testing.T) {
	c := Point{100, 200}
	r := RectAround(c, 100e6) // 100 km² in m²
	if math.Abs(r.Area()-100e6) > 1e-3 {
		t.Errorf("area = %v, want 100e6", r.Area())
	}
	if r.Center() != c {
		t.Errorf("center = %v, want %v", r.Center(), c)
	}
	if r.Width() != r.Height() {
		t.Error("RectAround must be square")
	}
	if RectAround(c, -5).Area() != 0 {
		t.Error("negative area should clamp to zero")
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{0, 0, 10, 10}.Expand(2)
	if r != (Rect{-2, -2, 12, 12}) {
		t.Errorf("Expand = %v", r)
	}
}

func TestRectAreaDegenerate(t *testing.T) {
	if (Rect{5, 5, 1, 1}).Area() != 0 {
		t.Error("inverted rect must have zero area")
	}
}

func TestUTMZone(t *testing.T) {
	cases := []struct {
		lng  float64
		want int
	}{
		{-74.0, 18},  // New York
		{-122.3, 10}, // Seattle (USANW)
		{0, 31},
		{-180, 1},
		{179.999, 60},
		{-999, 1}, // clamped
		{999, 60}, // clamped
	}
	for _, c := range cases {
		if got := UTMZone(c.lng); got != c.want {
			t.Errorf("UTMZone(%v) = %d, want %d", c.lng, got, c.want)
		}
	}
}

// Reference values cross-checked with an independent meridian-arc
// computation (Helmert series): NYC, 40.7128N 74.0060W, zone 18 gives
// E 583959, N 4507351.
func TestToUTMReference(t *testing.T) {
	p := ToUTM(LatLng{40.7128, -74.0060}, 18)
	if math.Abs(p.X-583959) > 5 || math.Abs(p.Y-4507351) > 5 {
		t.Errorf("NYC UTM = %v, want ~ (583959, 4507351)", p)
	}
}

func TestToUTMCentralMeridian(t *testing.T) {
	// On the central meridian of the zone the easting is the false easting.
	p := ToUTM(LatLng{45, -75}, 18) // zone 18 central meridian is 75W
	if math.Abs(p.X-utmFE) > 1e-6 {
		t.Errorf("easting on central meridian = %v, want %v", p.X, utmFE)
	}
}

func TestToUTMSouthernHemisphere(t *testing.T) {
	n := ToUTM(LatLng{-33.8688, 151.2093}, 56) // Sydney
	if n.Y < 5.8e6 || n.Y > 6.5e6 {
		t.Errorf("southern-hemisphere northing = %v, want ~6.25e6", n.Y)
	}
}

// Local distances must be preserved by the projection: 0.01° of latitude is
// ~1111 m anywhere.
func TestToUTMLocalScale(t *testing.T) {
	a := ToUTM(LatLng{40.70, -74.00}, 18)
	b := ToUTM(LatLng{40.71, -74.00}, 18)
	d := a.Dist(b)
	if math.Abs(d-1110.9) > 3 {
		t.Errorf("projected 0.01° latitude = %v m, want ~1111 m", d)
	}
}

// Monotonicity property: increasing longitude (east of the central meridian)
// increases easting; increasing latitude increases northing.
func TestToUTMMonotone(t *testing.T) {
	f := func(latSeed, lngSeed uint16) bool {
		lat := 20 + float64(latSeed%400)/10 // 20..60 N
		lng := -75 + float64(lngSeed%50)/10 // within zone 18-ish
		zone := 18
		p1 := ToUTM(LatLng{lat, lng}, zone)
		p2 := ToUTM(LatLng{lat + 0.01, lng}, zone)
		p3 := ToUTM(LatLng{lat, lng + 0.01}, zone)
		return p2.Y > p1.Y && p3.X > p1.X
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProjectAll(t *testing.T) {
	lls := []LatLng{{40.7128, -74.0060}, {40.7306, -73.9866}}
	pts := ProjectAll(lls)
	if len(pts) != 2 {
		t.Fatalf("len = %d", len(pts))
	}
	// ~2.5 km apart in reality.
	if d := pts[0].Dist(pts[1]); d < 2000 || d > 3500 {
		t.Errorf("projected distance = %v, want ~2500 m", d)
	}
	if ProjectAll(nil) != nil {
		t.Error("ProjectAll(nil) should be nil")
	}
}
