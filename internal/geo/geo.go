// Package geo provides the planar geometry and geodesy primitives used by
// the road-network substrate: points, rectangles, Euclidean distances, and
// conversion of WGS84 latitude/longitude coordinates to UTM (Universal
// Transverse Mercator), mirroring the preprocessing step of the paper
// (§7.1: "we convert the data to the UTM format, using World Geodetic
// System 84 specification").
package geo

import (
	"fmt"
	"math"
)

// Point is a location in a planar coordinate system (metres for UTM).
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, closed on all sides.
// The zero Rect is the empty rectangle at the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X),
		MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X),
		MaxY: math.Max(a.Y, b.Y),
	}
}

// RectAround returns the square of the given area (in the squared unit of
// the coordinate system, e.g. m²) centred at c.
func RectAround(c Point, area float64) Rect {
	if area < 0 {
		area = 0
	}
	half := math.Sqrt(area) / 2
	return Rect{c.X - half, c.Y - half, c.X + half, c.Y + half}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the intersection of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.MinX > out.MaxX || out.MinY > out.MaxY {
		return Rect{}, false
	}
	return out, true
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 {
	if r.MaxX < r.MinX || r.MaxY < r.MinY {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the centre point of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Expand returns r grown by d on every side (shrunk for negative d).
func (r Rect) Expand(d float64) Rect {
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.2f,%.2f]x[%.2f,%.2f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// LatLng is a WGS84 geographic coordinate in decimal degrees.
type LatLng struct {
	Lat, Lng float64
}

// WGS84 ellipsoid constants.
const (
	wgs84A  = 6378137.0         // semi-major axis (m)
	wgs84F  = 1 / 298.257223563 // flattening
	utmK0   = 0.9996            // UTM scale factor on the central meridian
	utmFE   = 500000.0          // false easting (m)
	utmFNSo = 10000000.0        // false northing, southern hemisphere (m)
	deg2rad = math.Pi / 180.0
)

// UTMZone returns the UTM longitudinal zone (1..60) for a longitude.
func UTMZone(lng float64) int {
	z := int(math.Floor((lng+180)/6)) + 1
	if z < 1 {
		z = 1
	}
	if z > 60 {
		z = 60
	}
	return z
}

// ToUTM projects a WGS84 coordinate to UTM easting/northing (metres) in the
// given zone. The implementation follows the standard Krüger series used by
// USGS; accuracy is sub-metre within a zone, which is far below road-segment
// length noise. Latitude must lie in (-90, 90).
func ToUTM(ll LatLng, zone int) Point {
	a := wgs84A
	f := wgs84F
	e2 := f * (2 - f)    // first eccentricity squared
	ep2 := e2 / (1 - e2) // second eccentricity squared
	lat := ll.Lat * deg2rad
	lng := ll.Lng * deg2rad
	lng0 := (float64(zone)*6 - 183) * deg2rad

	sinLat, cosLat := math.Sincos(lat)
	tanLat := sinLat / cosLat

	n := a / math.Sqrt(1-e2*sinLat*sinLat)
	t := tanLat * tanLat
	c := ep2 * cosLat * cosLat
	al := cosLat * (lng - lng0)

	// Meridional arc length.
	m := a * ((1-e2/4-3*e2*e2/64-5*e2*e2*e2/256)*lat -
		(3*e2/8+3*e2*e2/32+45*e2*e2*e2/1024)*math.Sin(2*lat) +
		(15*e2*e2/256+45*e2*e2*e2/1024)*math.Sin(4*lat) -
		(35*e2*e2*e2/3072)*math.Sin(6*lat))

	x := utmK0*n*(al+(1-t+c)*al*al*al/6+
		(5-18*t+t*t+72*c-58*ep2)*al*al*al*al*al/120) + utmFE
	y := utmK0 * (m + n*tanLat*(al*al/2+
		(5-t+9*c+4*c*c)*al*al*al*al/24+
		(61-58*t+t*t+600*c-330*ep2)*al*al*al*al*al*al/720))
	if ll.Lat < 0 {
		y += utmFNSo
	}
	return Point{X: x, Y: y}
}

// ProjectAll converts a slice of WGS84 coordinates to planar UTM points
// using the zone of the first coordinate, so that all points share one
// consistent planar frame (adequate for city/region-scale datasets).
func ProjectAll(lls []LatLng) []Point {
	if len(lls) == 0 {
		return nil
	}
	zone := UTMZone(lls[0].Lng)
	out := make([]Point, len(lls))
	for i, ll := range lls {
		out[i] = ToUTM(ll, zone)
	}
	return out
}
