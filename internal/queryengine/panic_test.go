package queryengine

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
)

// TestServerPanicContainment is the blast-radius gate: a request whose
// solve panics must fail only that client with ErrQueryPanic, while the
// server keeps answering every other request bit-identically to an
// unpoisoned server — and shutting it down leaks no goroutines.
func TestServerPanicContainment(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 8)
	want, err := Run(context.Background(), d, qs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	goroutinesBefore := runtime.NumGoroutine()
	srv := NewServer(d, ServerOptions{Workers: 2})

	submitAll := func(phase string) {
		t.Helper()
		for i, q := range qs {
			r, err := srv.Submit(context.Background(), q)
			if err != nil {
				t.Fatalf("%s: submit %d: %v", phase, i, err)
			}
			if !reflect.DeepEqual(r, want[i]) {
				t.Fatalf("%s: result %d differs from the batch answer", phase, i)
			}
		}
	}
	submitAll("before panic")

	// Two panicking requests in a row: the worker must survive each one,
	// replacing its planner, and the panic value must reach the client.
	for round := 0; round < 2; round++ {
		task := Task{Query: qs[0], Visit: func(*dataset.QueryInstance) error {
			panic("deliberate solver bug")
		}}
		err := srv.Do(&task)
		if !errors.Is(err, ErrQueryPanic) {
			t.Fatalf("round %d: panicking request returned %v, want ErrQueryPanic", round, err)
		}
		if !strings.Contains(err.Error(), "deliberate solver bug") {
			t.Fatalf("round %d: panic value lost: %v", round, err)
		}
	}

	// The server must keep serving with answers bit-identical to before.
	submitAll("after panic")

	st := srv.Stats()
	if st.Panics != 2 {
		t.Errorf("Stats().Panics = %d, want 2", st.Panics)
	}
	if st.Errors < 2 {
		t.Errorf("Stats().Errors = %d, want >= 2 (panics count as errors)", st.Errors)
	}
	if want := int64(2*len(qs) + 2); st.Served != want {
		t.Errorf("Stats().Served = %d, want %d", st.Served, want)
	}
	if !strings.Contains(st.String(), "panics=2") {
		t.Errorf("stats line lacks panic counter: %s", st)
	}

	srv.Close()

	// No goroutine leaks: the workers must all have exited. Allow the
	// runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close: %d, want <= %d (leak)", runtime.NumGoroutine(), goroutinesBefore)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}

	// A closed server still answers submissions, with the typed error.
	if _, err := srv.Submit(context.Background(), qs[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("submit after close: %v, want ErrServerClosed", err)
	}
}

// TestServerPanicConcurrent interleaves panicking and healthy requests
// across workers under load; every healthy answer must stay correct and
// every poisoned one must fail typed.
func TestServerPanicConcurrent(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 6)
	want, err := Run(context.Background(), d, qs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d, ServerOptions{Workers: 3, Queue: 4})
	defer srv.Close()

	const rounds = 5
	errc := make(chan error, rounds*(len(qs)+1))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < rounds; r++ {
			task := Task{Query: qs[0], Visit: func(*dataset.QueryInstance) error {
				panic("chaos")
			}}
			if err := srv.Do(&task); !errors.Is(err, ErrQueryPanic) {
				errc <- errors.New("panic task not answered with ErrQueryPanic")
			}
		}
	}()
	for r := 0; r < rounds; r++ {
		for i, q := range qs {
			res, err := srv.Submit(context.Background(), q)
			if err != nil {
				t.Fatalf("round %d query %d: %v", r, i, err)
			}
			if !reflect.DeepEqual(res, want[i]) {
				t.Fatalf("round %d query %d: answer drifted under panic chaos", r, i)
			}
		}
	}
	<-done
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Panics != rounds {
		t.Fatalf("Panics = %d, want %d", st.Panics, rounds)
	}
}
