package queryengine

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
)

// TestDeadlineOrderedService: with DeadlineOrdered set, queued requests
// are served earliest-deadline-first — not in arrival order — with
// deadline-free requests after every deadlined one, and arrival order as
// the tie-break among the deadline-free.
func TestDeadlineOrderedService(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 1)
	srv := NewServer(d, ServerOptions{Workers: 1, Queue: 16, DeadlineOrdered: true})
	defer srv.Close()

	// Park the single worker on a gate task so everything submitted next
	// piles up in the EDF heap instead of being served as it arrives.
	gate := make(chan struct{})
	started := make(chan struct{})
	gateTask := Task{Query: qs[0], Visit: func(*dataset.QueryInstance) error {
		close(started)
		<-gate
		return nil
	}}
	gateDone := make(chan error, 1)
	go func() { gateDone <- srv.Do(&gateTask) }()
	<-started

	queued := func(n int) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			srv.edf.mu.Lock()
			l := len(srv.edf.items)
			srv.edf.mu.Unlock()
			if l >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("only %d of %d tasks reached the EDF heap", l, n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Submit with deadlines hours out (they never fire) in scrambled
	// order, then two deadline-free requests. Submissions are sequenced —
	// each must reach the heap before the next is sent — so the admission
	// order, and with it the tie-break, is deterministic.
	base := time.Now()
	offsets := []time.Duration{3 * time.Hour, time.Hour, 5 * time.Hour, 2 * time.Hour, 4 * time.Hour, 0, 0}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i, off := range offsets {
		ctx := context.Background()
		if off > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, base.Add(off))
			defer cancel()
		}
		i := i
		task := &Task{Query: qs[0], Ctx: ctx, Visit: func(*dataset.QueryInstance) error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		}}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Do(task); err != nil {
				t.Errorf("task %d: %v", i, err)
			}
		}()
		queued(i + 1)
	}

	close(gate)
	if err := <-gateDone; err != nil {
		t.Fatalf("gate task: %v", err)
	}
	wg.Wait()

	want := []int{1, 3, 0, 4, 2, 5, 6} // ascending deadline, then FIFO deadline-free
	if len(order) != len(want) {
		t.Fatalf("served %d tasks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

// TestEDFQueueBounded: push blocks at capacity until a pop frees a
// slot. Regression: the heap was unbounded, so the dispatcher drained
// the bounded admission channel as fast as requests arrived and the
// documented Queue backpressure silently disappeared in EDF mode.
func TestEDFQueueBounded(t *testing.T) {
	q := newEDFQueue(2)
	q.push(&Task{})
	q.push(&Task{})
	pushed := make(chan struct{})
	go func() {
		q.push(&Task{})
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("push past capacity did not block")
	case <-time.After(50 * time.Millisecond):
	}
	if _, ok := q.pop(); !ok {
		t.Fatal("pop on a full queue failed")
	}
	select {
	case <-pushed:
	case <-time.After(5 * time.Second):
		t.Fatal("push did not resume after a pop freed a slot")
	}
	q.close()
	for i := 0; i < 2; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("drain pop %d failed", i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on a closed empty queue reported a task")
	}
}

// TestDeadlineOrderedBackpressure: at the server level, the EDF heap
// never holds more than Queue tasks even with far more submitted — the
// overflow waits in Do, exactly like FIFO mode.
func TestDeadlineOrderedBackpressure(t *testing.T) {
	const queue = 2
	d, qs := testWorkload(t, 0.1, 1)
	srv := NewServer(d, ServerOptions{Workers: 1, Queue: queue, DeadlineOrdered: true})
	defer srv.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	gateTask := Task{Query: qs[0], Visit: func(*dataset.QueryInstance) error {
		close(started)
		<-gate
		return nil
	}}
	gateDone := make(chan error, 1)
	go func() { gateDone <- srv.Do(&gateTask) }()
	<-started

	const submitted = 6
	var wg sync.WaitGroup
	for i := 0; i < submitted; i++ {
		task := &Task{Query: qs[0], Visit: func(*dataset.QueryInstance) error { return nil }}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Do(task); err != nil {
				t.Errorf("task: %v", err)
			}
		}()
	}

	// While the worker is parked, the waiting backlog must stay capped at
	// Queue no matter how many submissions pile up behind Do.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		srv.edf.mu.Lock()
		l := len(srv.edf.items)
		srv.edf.mu.Unlock()
		if l > queue {
			t.Fatalf("EDF heap holds %d tasks, capacity %d", l, queue)
		}
		time.Sleep(time.Millisecond)
	}

	close(gate)
	if err := <-gateDone; err != nil {
		t.Fatalf("gate task: %v", err)
	}
	wg.Wait()
}

// TestDeadlineOrderedMatchesFIFO: the golden guarantee holds in EDF mode
// too — ordering changes scheduling, never answers.
func TestDeadlineOrderedMatchesFIFO(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 8)
	want, err := Run(context.Background(), d, qs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d, ServerOptions{Workers: 2, DeadlineOrdered: true})
	defer srv.Close()
	for i, q := range qs {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		r, err := srv.Submit(ctx, q)
		cancel()
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, want[i]) {
			t.Fatalf("query %d: EDF result %+v, batch %+v", i, r, want[i])
		}
	}
}
