package queryengine

import (
	"fmt"
	"math"
	"slices"
	"time"
)

// ServerStats is a point-in-time summary of a Server's traffic. Counters
// cover the server's whole lifetime; the latency percentiles cover the
// retained window (the most recent LatencyWindow samples per worker).
type ServerStats struct {
	// Served counts requests a worker processed, including errored ones;
	// shed requests are not served and are counted separately.
	Served int64
	// Matched counts default-path requests that produced a region.
	Matched int64
	// Errors counts requests answered with an error: admission rejections
	// (context already done), per-query validation or solver failures, and
	// mid-solve cancellations. Shed requests are not errors.
	Errors int64
	// Shed counts requests rejected with ErrOverloaded because they
	// out-waited MaxQueueAge in the queue.
	Shed int64
	// Panics counts requests whose solve panicked; each failed only its own
	// client (ErrQueryPanic) and is also included in Served and Errors.
	Panics int64
	// Window is the number of latency samples the percentiles summarize.
	Window int
	// P50, P95, P99 and Max are request latencies (submission to answer,
	// queueing included) at the 50th/95th/99th percentile and the window
	// maximum. Zero when no request has completed yet.
	P50, P95, P99, Max time.Duration
}

// String formats the stats as one readable line.
func (st ServerStats) String() string {
	return fmt.Sprintf("served=%d matched=%d errors=%d shed=%d panics=%d p50=%v p95=%v p99=%v max=%v (window %d)",
		st.Served, st.Matched, st.Errors, st.Shed, st.Panics, st.P50, st.P95, st.P99, st.Max, st.Window)
}

// Stats snapshots the server's counters and latency percentiles. It may be
// called concurrently with traffic; it briefly locks each worker's sample
// ring in turn, so the snapshot is per-worker consistent.
func (s *Server) Stats() ServerStats {
	var st ServerStats
	st.Errors = s.rejected.Load()
	var all []time.Duration
	for _, ws := range s.workers {
		ws.mu.Lock()
		st.Served += ws.served
		st.Matched += ws.matched
		st.Errors += ws.errors
		st.Shed += ws.shed
		st.Panics += ws.panics
		all = append(all, ws.lat...)
		ws.mu.Unlock()
	}
	st.Window = len(all)
	if len(all) == 0 {
		return st
	}
	slices.Sort(all)
	st.P50 = percentile(all, 50)
	st.P95 = percentile(all, 95)
	st.P99 = percentile(all, 99)
	st.Max = all[len(all)-1]
	return st
}

// percentile returns the nearest-rank p-th percentile of a sorted sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
