package queryengine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
)

// TestServerMatchesRun is the streaming golden guarantee: serving a
// workload query by query must return exactly what the batch engine
// returns, for every method.
func TestServerMatchesRun(t *testing.T) {
	d, qs := testWorkload(t, 0.12, 12)
	for _, method := range []Method{MethodTGEN, MethodGreedy, MethodAPP} {
		want, err := Run(context.Background(), d, qs, Options{Workers: 1, Method: method})
		if err != nil {
			t.Fatalf("%v batch: %v", method, err)
		}
		srv := NewServer(d, ServerOptions{Workers: 2, Options: Options{Method: method}})
		got := make([]Result, len(qs))
		for i, q := range qs {
			r, err := srv.Submit(context.Background(), q)
			if err != nil {
				t.Fatalf("%v submit %d: %v", method, i, err)
			}
			got[i] = r
		}
		srv.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: served results differ from batch results", method)
		}
	}
}

// TestServerConcurrentSubmits hammers one server from many goroutines (the
// -race CI step exercises the locking) and checks every answer.
func TestServerConcurrentSubmits(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 8)
	want, err := Run(context.Background(), d, qs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d, ServerOptions{Workers: 3, Queue: 2})
	defer srv.Close()
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(qs))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range qs {
				r, err := srv.Submit(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(r, want[i]) {
					errs <- errors.New("served result differs from batch result")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Served != int64(clients*len(qs)) {
		t.Fatalf("Served = %d, want %d", st.Served, clients*len(qs))
	}
}

// TestServerVisit exercises the zero-copy path: the callback runs on the
// worker with the pooled instance and can solve in place.
func TestServerVisit(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 4)
	want, err := Run(context.Background(), d, qs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d, ServerOptions{Workers: 1})
	defer srv.Close()
	for i, q := range qs {
		var score float64
		task := Task{Query: q, Visit: func(qi *dataset.QueryInstance) error {
			region, err := Solve(context.Background(), qi, q.Delta, Options{})
			if err != nil {
				return err
			}
			if region != nil {
				score = region.Score
			}
			return nil
		}}
		if err := srv.Do(&task); err != nil {
			t.Fatalf("visit %d: %v", i, err)
		}
		if task.Result.Matched {
			t.Fatal("visit path must not fill the default Result")
		}
		if score != want[i].Score {
			t.Fatalf("visit %d: score %v, want %v", i, score, want[i].Score)
		}
	}
	boom := errors.New("boom")
	task := Task{Query: qs[0], Visit: func(*dataset.QueryInstance) error { return boom }}
	if err := srv.Do(&task); !errors.Is(err, boom) {
		t.Fatalf("visit error = %v, want boom", err)
	}
}

// TestTaskReuseClearsResult guards the reusable-Task contract: a stale
// answer must never survive into a later submission that matches nothing,
// errors, or takes the Visit path.
func TestTaskReuseClearsResult(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 4)
	srv := NewServer(d, ServerOptions{Workers: 1})
	defer srv.Close()
	var task Task
	var matchedQuery *dataset.Query
	for i := range qs {
		task.Query = qs[i]
		if err := srv.Do(&task); err != nil {
			t.Fatal(err)
		}
		if task.Result.Matched {
			matchedQuery = &qs[i]
			break
		}
	}
	if matchedQuery == nil {
		t.Fatal("no query matched; test is vacuous")
	}
	task.Visit = func(*dataset.QueryInstance) error { return nil }
	if err := srv.Do(&task); err != nil {
		t.Fatal(err)
	}
	if task.Result.Matched || task.Result.Nodes != nil {
		t.Fatalf("visit-path reuse kept a stale Result: %+v", task.Result)
	}
	task.Visit = nil
	bad := NewServer(d, ServerOptions{Workers: 1, Options: Options{Method: Method(99)}})
	defer bad.Close()
	if err := srv.Do(&task); err != nil || !task.Result.Matched {
		t.Fatalf("re-matching on the good server failed: err=%v result=%+v", err, task.Result)
	}
	if err := bad.Do(&task); err == nil {
		t.Fatal("unknown method accepted")
	}
	if task.Result.Matched {
		t.Fatalf("errored submission kept a stale Result: %+v", task.Result)
	}
}

// TestServerClose checks graceful shutdown: queued work completes, later
// submits fail with ErrServerClosed, and Close is idempotent.
func TestServerClose(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 6)
	srv := NewServer(d, ServerOptions{Workers: 2})
	var wg sync.WaitGroup
	for _, q := range qs {
		wg.Add(1)
		go func(q dataset.Query) {
			defer wg.Done()
			if _, err := srv.Submit(context.Background(), q); err != nil {
				t.Errorf("submit before close: %v", err)
			}
		}(q)
	}
	wg.Wait()
	srv.Close()
	if _, err := srv.Submit(context.Background(), qs[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("submit after close: %v, want ErrServerClosed", err)
	}
	srv.Close() // must not panic or deadlock
	if st := srv.Stats(); st.Served != int64(len(qs)) {
		t.Fatalf("Served = %d, want %d", st.Served, len(qs))
	}
}

// TestServerStats sanity-checks the latency report shape.
func TestServerStats(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 8)
	srv := NewServer(d, ServerOptions{Workers: 2, LatencyWindow: 4})
	for _, q := range qs {
		if _, err := srv.Submit(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	st := srv.Stats()
	if st.Served != int64(len(qs)) {
		t.Fatalf("Served = %d, want %d", st.Served, len(qs))
	}
	// Each worker retains at most 4 samples; with 8 requests over 2 workers
	// the merged window is between 4 (one worker served all) and 8.
	if st.Window < 4 || st.Window > 8 {
		t.Fatalf("Window = %d, want 4..8", st.Window)
	}
	if st.P50 <= 0 || st.P50 > st.P95 || st.P95 > st.P99 || st.P99 > st.Max {
		t.Fatalf("percentiles out of order: %v", st)
	}
	if st.Matched == 0 {
		t.Fatal("workload matched nothing; test is vacuous")
	}
}

func TestPercentile(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i + 1)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{{50, 50}, {95, 95}, {99, 99}, {100, 100}, {0, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(1..100, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile([]time.Duration{7}, 99); got != 7 {
		t.Errorf("single sample p99 = %v, want 7", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty sample = %v, want 0", got)
	}
}

// TestServerConcurrentClose hammers Close from many goroutines: it must
// be idempotent, race-free, and leave the server cleanly closed.
func TestServerConcurrentClose(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 4)
	srv := NewServer(d, ServerOptions{Workers: 2})
	for _, q := range qs {
		if _, err := srv.Submit(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Close()
		}()
	}
	wg.Wait()
	if _, err := srv.Submit(context.Background(), qs[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("submit after concurrent close = %v, want ErrServerClosed", err)
	}
}

// TestServerRejectsDoneContext checks deadline-aware admission: a request
// whose context is already done is rejected without dispatch — no worker
// sees it, Served stays put, and it is counted as an error.
func TestServerRejectsDoneContext(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 2)
	srv := NewServer(d, ServerOptions{Workers: 1})
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Submit(ctx, qs[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("submit with done context = %v, want context.Canceled", err)
	}
	st := srv.Stats()
	if st.Served != 0 {
		t.Fatalf("Served = %d after a rejected request, want 0", st.Served)
	}
	if st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
	// The server is still healthy for live contexts.
	if _, err := srv.Submit(context.Background(), qs[0]); err != nil {
		t.Fatalf("submit after rejection: %v", err)
	}
}

// TestServerShedsByQueueAge checks the load-shedding policy: requests
// queued past MaxQueueAge are answered with ErrOverloaded, counted in
// Stats().Shed, and never reach a planner.
func TestServerShedsByQueueAge(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 4)
	srv := NewServer(d, ServerOptions{Workers: 1, Queue: 8, MaxQueueAge: time.Millisecond})
	defer srv.Close()

	// Occupy the single worker, then pile requests up behind it so they
	// age out in the queue.
	started := make(chan struct{})
	release := make(chan struct{})
	slowErr := make(chan error, 1)
	slow := Task{Query: qs[0], Visit: func(*dataset.QueryInstance) error {
		close(started)
		<-release
		return nil
	}}
	go func() { slowErr <- srv.Do(&slow) }()
	<-started

	const queued = 3
	errs := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func(q dataset.Query) {
			_, err := srv.Submit(context.Background(), q)
			errs <- err
		}(qs[1+i%(len(qs)-1)])
	}
	time.Sleep(20 * time.Millisecond) // age the queued requests past the threshold
	close(release)
	if err := <-slowErr; err != nil {
		t.Fatalf("slow request: %v", err)
	}
	for i := 0; i < queued; i++ {
		if err := <-errs; !errors.Is(err, ErrOverloaded) {
			t.Fatalf("queued request err = %v, want ErrOverloaded", err)
		}
	}
	st := srv.Stats()
	if st.Shed != queued {
		t.Fatalf("Shed = %d, want %d", st.Shed, queued)
	}
	if st.Served != 1 {
		t.Fatalf("Served = %d, want 1 (only the slow request was solved)", st.Served)
	}
	if !strings.Contains(st.String(), "shed=3") {
		t.Fatalf("ServerStats.String() omits the shed counter: %q", st.String())
	}
}

// TestServerPerTaskOptions checks per-request option overrides: a Task
// carrying its own Options is answered with that method, not the server
// default.
func TestServerPerTaskOptions(t *testing.T) {
	d, qs := testWorkload(t, 0.12, 6)
	wantGreedy, err := Run(context.Background(), d, qs, Options{Workers: 1, Method: MethodGreedy})
	if err != nil {
		t.Fatal(err)
	}
	wantTGEN, err := Run(context.Background(), d, qs, Options{Workers: 1, Method: MethodTGEN})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d, ServerOptions{Workers: 1, Options: Options{Method: MethodTGEN}})
	defer srv.Close()
	override := Options{Method: MethodGreedy}
	for i, q := range qs {
		task := Task{Query: q, Opts: &override}
		if err := srv.Do(&task); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(task.Result, wantGreedy[i]) {
			t.Fatalf("query %d: per-task Greedy override not honored", i)
		}
		r, err := srv.Submit(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, wantTGEN[i]) {
			t.Fatalf("query %d: default options disturbed by per-task override", i)
		}
	}
}

// TestServerErrorCounter checks that errored requests show up in stats
// (they used to be invisible).
func TestServerErrorCounter(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 2)
	srv := NewServer(d, ServerOptions{Workers: 1, Options: Options{Method: Method(99)}})
	defer srv.Close()
	if _, err := srv.Submit(context.Background(), qs[0]); err == nil {
		t.Fatal("unknown method accepted")
	}
	st := srv.Stats()
	if st.Errors != 1 || st.Served != 1 {
		t.Fatalf("Errors = %d Served = %d, want 1 and 1", st.Errors, st.Served)
	}
	if !strings.Contains(st.String(), "errors=1") {
		t.Fatalf("ServerStats.String() omits the error counter: %q", st.String())
	}
}

// TestRunFuncHonorsContext checks batch-level cancellation: a cancelled
// context stops the fan-out and surfaces ctx.Err().
func TestRunFuncHonorsContext(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, d, qs, Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run = %v, want context.Canceled", err)
	}
}
