package queryengine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/roadnet"
)

// ErrServerClosed is returned by Do and Submit after Close.
var ErrServerClosed = errors.New("queryengine: server closed")

// ErrOverloaded is returned when the server sheds a request under load:
// the request waited in the queue longer than ServerOptions.MaxQueueAge.
// Shed requests are counted in ServerStats.Shed; clients should back off
// and retry.
var ErrOverloaded = errors.New("queryengine: server overloaded")

// ErrQueryPanic is returned to the one client whose request made a worker
// panic (a solver bug, not bad input). The blast radius stops there: the
// worker recovers, discards its possibly-poisoned planner for a fresh one,
// and keeps serving; other requests — past and future — are unaffected.
// Panics are counted in ServerStats.Panics.
var ErrQueryPanic = errors.New("queryengine: query panicked")

// ServerOptions configures a streaming Server.
type ServerOptions struct {
	// Workers is the number of serving goroutines, each owning one pooled
	// dataset.Planner; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Options selects the algorithm and its tuning for the default solve
	// path (its Workers field is ignored; ServerOptions.Workers rules).
	// A Task may override it per request through Task.Opts.
	Options Options
	// Queue is the request-channel capacity. A full queue makes Do block —
	// that backpressure is the server's admission control. <= 0 means
	// 2×Workers.
	Queue int
	// MaxQueueAge, when positive, is the load-shedding threshold: a
	// request that waited longer than this between submission and pickup
	// is answered with ErrOverloaded instead of being solved. Under
	// sustained overload this bounds the work the server wastes on
	// requests whose clients have likely timed out already. Zero disables
	// shedding.
	MaxQueueAge time.Duration
	// LatencyWindow is the number of per-worker latency samples retained
	// for percentile reporting (a ring buffer of the most recent requests);
	// <= 0 means 4096.
	LatencyWindow int
	// DeadlineOrdered, when set, serves queued requests earliest-deadline-
	// first instead of FIFO: a dispatcher moves requests from the admission
	// channel into a deadline-ordered heap and workers pop from it.
	// Requests without a deadline sort after every request with one; ties
	// (equal deadlines, or all-deadline-free) fall back to admission order.
	// The heap is bounded at Queue and the admission channel is unbuffered
	// in this mode, so the total waiting backlog stays capped by Queue
	// (plus the one request in the dispatcher's hand) and Do blocks on a
	// full backlog exactly as in FIFO mode; shedding is unchanged — only
	// the order in which waiting requests reach a worker differs.
	DeadlineOrdered bool
}

// Task is one streamed query request. A Task is reusable: submitting the
// same Task again through Do reuses its internal completion channel and the
// Result's Nodes backing array, so a caller replaying queries through one
// Task allocates nothing per request.
type Task struct {
	// Query is the request.
	Query dataset.Query
	// Ctx, when non-nil, bounds the request: a context that is already
	// done at submission is rejected without dispatch, cancellation while
	// queued is observed at pickup, and cancellation mid-solve is observed
	// by the solver checkpoints, all surfacing ctx.Err(). nil means
	// context.Background() (never cancelled).
	Ctx context.Context
	// Opts, when non-nil, overrides the server's configured Options for
	// this request only (its Workers field is ignored).
	Opts *Options
	// Visit, when non-nil, replaces the default solve: it runs on the
	// worker goroutine with the materialized working graph, which aliases
	// the worker's pooled planner buffers and is valid only for the
	// duration of the call. The caller typically runs Solve itself and
	// consumes the region in place.
	Visit func(qi *dataset.QueryInstance) error
	// Result holds the default-path outcome after Do returns (zero value
	// when Visit was set or no region matched). A matched Result's Nodes
	// aliases the task's pooled backing array and is valid until the task
	// is submitted again.
	Result Result
	// Wait is the queue delay the worker observed at pickup — the time
	// between submission and the start of service. It is written by the
	// worker before the shedding check and before Visit runs, so a Visit
	// callback can read it as its load signal (Wait / MaxQueueAge is the
	// pressure that reaches 1.0 exactly at the shedding threshold). Valid
	// during Visit and after Do returns, until the task is resubmitted.
	Wait time.Duration

	start time.Time
	done  chan error
	nodes []roadnet.NodeID // pooled Result.Nodes backing array
}

// ctx returns the task's context, defaulting to Background.
func (t *Task) ctx() context.Context {
	if t.Ctx != nil {
		return t.Ctx
	}
	return context.Background()
}

// Server answers a continuous stream of LCMSR queries. Requests enter
// through a bounded channel and are picked up by a fixed pool of workers,
// each owning one pooled dataset.Planner, so the steady-state search path
// (query preparation, grid search, subgraph extraction, instance build) is
// allocation-free. Results are bit-identical to Run/RunFunc on the same
// dataset: the shared state is immutable and all per-query computation is
// deterministic, so scheduling cannot change answers.
//
// Admission control is deadline-aware: a request whose context is already
// done is rejected without dispatch, a request still queued past
// MaxQueueAge is shed with ErrOverloaded, and a request cancelled
// mid-solve returns ctx.Err() within a bounded number of solver
// iterations (the worker and its scratch stay healthy and serve the next
// request with bit-identical results).
//
// A Server must be Closed when done; Close drains queued requests and waits
// for the workers to exit.
type Server struct {
	d           *dataset.Dataset
	opts        Options
	maxQueueAge time.Duration

	tasks    chan *Task
	edf      *edfQueue // non-nil when DeadlineOrdered: workers pop here
	workers  []*workerState
	rejected atomic.Int64 // admission rejections (context done before dispatch)

	mu     sync.RWMutex // guards closed vs. in-flight sends
	closed bool
	wg     sync.WaitGroup
}

// workerState is one worker's latency/match bookkeeping. The ring buffer is
// preallocated so recording a sample never allocates.
type workerState struct {
	mu      sync.Mutex
	lat     []time.Duration // ring of the most recent samples
	next    int             // overwrite cursor once the ring is full
	served  int64
	matched int64
	errors  int64
	shed    int64
	panics  int64
}

func (ws *workerState) record(d time.Duration, matched, errored bool) {
	ws.mu.Lock()
	if len(ws.lat) < cap(ws.lat) {
		ws.lat = append(ws.lat, d)
	} else if len(ws.lat) > 0 {
		ws.lat[ws.next] = d
		ws.next++
		if ws.next == len(ws.lat) {
			ws.next = 0
		}
	}
	ws.served++
	if matched {
		ws.matched++
	}
	if errored {
		ws.errors++
	}
	ws.mu.Unlock()
}

// recordShed counts a request shed at pickup; no latency sample is taken
// because the request was never served.
func (ws *workerState) recordShed() {
	ws.mu.Lock()
	ws.shed++
	ws.mu.Unlock()
}

// recordRejected counts a request found dead (context done) at pickup.
// Like a shed request it was never served, so it takes no latency sample
// and does not count as Served — a queue full of expired requests must
// not drag the reported percentiles below real service latency.
func (ws *workerState) recordRejected() {
	ws.mu.Lock()
	ws.errors++
	ws.mu.Unlock()
}

// NewServer starts a streaming query server over d. The returned server is
// immediately ready; callers submit through Do or Submit from any number of
// goroutines and must Close it when done.
func NewServer(d *dataset.Dataset, opts ServerOptions) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := opts.Queue
	if queue <= 0 {
		queue = 2 * workers
	}
	window := opts.LatencyWindow
	if window <= 0 {
		window = 4096
	}
	s := &Server{
		d:           d,
		opts:        opts.Options,
		maxQueueAge: opts.MaxQueueAge,
	}
	if opts.DeadlineOrdered {
		// The waiting backlog lives in the bounded heap, so the channel is
		// a pure handoff: buffering it too would double the effective queue
		// capacity behind the caller's back.
		s.tasks = make(chan *Task)
		s.edf = newEDFQueue(queue)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for t := range s.tasks {
				s.edf.push(t) // blocks while the heap is full: backpressure
			}
			s.edf.close()
		}()
	} else {
		s.tasks = make(chan *Task, queue)
	}
	for i := 0; i < workers; i++ {
		ws := &workerState{lat: make([]time.Duration, 0, window)}
		s.workers = append(s.workers, ws)
		s.wg.Add(1)
		go s.worker(ws)
	}
	return s
}

// Do submits t and blocks until it is served, returning the per-query
// error. Latency is measured from submission, so queueing delay under
// backpressure is part of the reported percentiles. A task whose context
// is already done is rejected with ctx.Err() without dispatch; a task
// blocked on a full queue gives up with ctx.Err() when the context fires
// first. Once dispatched, Do waits for the worker's answer — cancellation
// is then honored by the worker (at pickup and in the solver
// checkpoints), which keeps a reused Task's memory owned by exactly one
// side at a time. Do is safe for concurrent use with distinct Tasks; a
// single Task must not be submitted concurrently with itself.
func (s *Server) Do(t *Task) error {
	ctx := t.ctx()
	if err := ctx.Err(); err != nil {
		s.rejected.Add(1)
		return err
	}
	if t.done == nil {
		t.done = make(chan error, 1)
	}
	t.start = time.Now()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrServerClosed
	}
	select {
	case s.tasks <- t:
		s.mu.RUnlock()
	case <-ctx.Done():
		s.mu.RUnlock()
		s.rejected.Add(1)
		return ctx.Err()
	}
	return <-t.done
}

// Submit answers one query through the default solve path. It is the
// convenience form of Do with a fresh Task per call; ctx bounds the
// request exactly as Task.Ctx does.
func (s *Server) Submit(ctx context.Context, q dataset.Query) (Result, error) {
	t := Task{Ctx: ctx, Query: q}
	err := s.Do(&t)
	return t.Result, err
}

// Close stops accepting new requests, serves everything already queued,
// and waits for the workers to exit. It is idempotent and safe to call
// concurrently.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.tasks)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// worker owns one planner and serves tasks until the queue closes. In
// FIFO mode tasks come straight off the admission channel; in
// deadline-ordered mode they come off the EDF heap the dispatcher feeds.
func (s *Server) worker(ws *workerState) {
	defer s.wg.Done()
	p := s.d.NewPlanner()
	for {
		var t *Task
		var ok bool
		if s.edf != nil {
			t, ok = s.edf.pop()
		} else {
			t, ok = <-s.tasks
		}
		if !ok {
			return
		}
		err, panicked := s.serveSafe(p, ws, t)
		if panicked {
			// The panic may have left the planner's pooled scratch in an
			// arbitrary state; replace it so later answers stay bit-identical
			// to an unpoisoned server's. The panicking request already paid
			// the error; the allocation is once per panic, not per request.
			p = s.d.NewPlanner()
		}
		t.done <- err
	}
}

// serveSafe runs serve with a recover backstop: a panicking solver fails
// only its own request (ErrQueryPanic) instead of crashing the process and
// every in-flight query with it.
func (s *Server) serveSafe(p *dataset.Planner, ws *workerState, t *Task) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("%w: %v", ErrQueryPanic, r)
			ws.mu.Lock()
			ws.served++
			ws.errors++
			ws.panics++
			ws.mu.Unlock()
		}
	}()
	return s.serve(p, ws, t), false
}

// serve answers one task on the worker's planner and records its latency.
func (s *Server) serve(p *dataset.Planner, ws *workerState, t *Task) error {
	t.Result = Result{} // a reused Task must never carry a stale answer
	t.Wait = time.Since(t.start)
	ctx := t.ctx()
	// Shed before touching the planner: a request that went stale in the
	// queue (dead context, or older than the shedding threshold) is not
	// worth solving.
	if err := ctx.Err(); err != nil {
		ws.recordRejected()
		return err
	}
	if s.maxQueueAge > 0 && t.Wait > s.maxQueueAge {
		ws.recordShed()
		return ErrOverloaded
	}
	opts := s.opts
	if t.Opts != nil {
		opts = *t.Opts
	}
	matched := false
	qi, err := p.InstantiateCtx(ctx, t.Query)
	if err == nil {
		if t.Visit != nil {
			err = t.Visit(qi)
		} else {
			var region *core.Region
			region, err = Solve(ctx, qi, t.Query.Delta, opts)
			if err == nil && region != nil {
				matched = true
				nodes := t.nodes[:0] // reuse the task's pooled backing array
				for _, v := range region.Nodes {
					nodes = append(nodes, qi.Sub.ToParent[v])
				}
				t.nodes = nodes
				t.Result = Result{Matched: true, Score: region.Score, Length: region.Length, Nodes: nodes}
			}
		}
	}
	ws.record(time.Since(t.start), matched, err != nil)
	return err
}
