package queryengine

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/roadnet"
)

// ErrServerClosed is returned by Do and Submit after Close.
var ErrServerClosed = errors.New("queryengine: server closed")

// ServerOptions configures a streaming Server.
type ServerOptions struct {
	// Workers is the number of serving goroutines, each owning one pooled
	// dataset.Planner; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Options selects the algorithm and its tuning for the default solve
	// path (its Workers field is ignored; ServerOptions.Workers rules).
	Options Options
	// Queue is the request-channel capacity. A full queue makes Do block —
	// that backpressure is the server's admission control. <= 0 means
	// 2×Workers.
	Queue int
	// LatencyWindow is the number of per-worker latency samples retained
	// for percentile reporting (a ring buffer of the most recent requests);
	// <= 0 means 4096.
	LatencyWindow int
}

// Task is one streamed query request. A Task is reusable: submitting the
// same Task again through Do reuses its internal completion channel and the
// Result's Nodes backing array, so a caller replaying queries through one
// Task allocates nothing per request.
type Task struct {
	// Query is the request.
	Query dataset.Query
	// Visit, when non-nil, replaces the default solve: it runs on the
	// worker goroutine with the materialized working graph, which aliases
	// the worker's pooled planner buffers and is valid only for the
	// duration of the call. The caller typically runs Solve itself and
	// consumes the region in place.
	Visit func(qi *dataset.QueryInstance) error
	// Result holds the default-path outcome after Do returns (zero value
	// when Visit was set or no region matched). A matched Result's Nodes
	// aliases the task's pooled backing array and is valid until the task
	// is submitted again.
	Result Result

	start time.Time
	done  chan error
	nodes []roadnet.NodeID // pooled Result.Nodes backing array
}

// Server answers a continuous stream of LCMSR queries. Requests enter
// through a bounded channel and are picked up by a fixed pool of workers,
// each owning one pooled dataset.Planner, so the steady-state search path
// (query preparation, grid search, subgraph extraction, instance build) is
// allocation-free. Results are bit-identical to Run/RunFunc on the same
// dataset: the shared state is immutable and all per-query computation is
// deterministic, so scheduling cannot change answers.
//
// A Server must be Closed when done; Close drains queued requests and waits
// for the workers to exit.
type Server struct {
	d    *dataset.Dataset
	opts Options

	tasks   chan *Task
	workers []*workerState

	mu     sync.RWMutex // guards closed vs. in-flight sends
	closed bool
	wg     sync.WaitGroup
}

// workerState is one worker's latency/match bookkeeping. The ring buffer is
// preallocated so recording a sample never allocates.
type workerState struct {
	mu      sync.Mutex
	lat     []time.Duration // ring of the most recent samples
	next    int             // overwrite cursor once the ring is full
	served  int64
	matched int64
}

func (ws *workerState) record(d time.Duration, matched bool) {
	ws.mu.Lock()
	if len(ws.lat) < cap(ws.lat) {
		ws.lat = append(ws.lat, d)
	} else if len(ws.lat) > 0 {
		ws.lat[ws.next] = d
		ws.next++
		if ws.next == len(ws.lat) {
			ws.next = 0
		}
	}
	ws.served++
	if matched {
		ws.matched++
	}
	ws.mu.Unlock()
}

// NewServer starts a streaming query server over d. The returned server is
// immediately ready; callers submit through Do or Submit from any number of
// goroutines and must Close it when done.
func NewServer(d *dataset.Dataset, opts ServerOptions) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := opts.Queue
	if queue <= 0 {
		queue = 2 * workers
	}
	window := opts.LatencyWindow
	if window <= 0 {
		window = 4096
	}
	s := &Server{
		d:     d,
		opts:  opts.Options,
		tasks: make(chan *Task, queue),
	}
	for i := 0; i < workers; i++ {
		ws := &workerState{lat: make([]time.Duration, 0, window)}
		s.workers = append(s.workers, ws)
		s.wg.Add(1)
		go s.worker(ws)
	}
	return s
}

// Do submits t and blocks until it is served, returning the per-query
// error. Latency is measured from submission, so queueing delay under
// backpressure is part of the reported percentiles. Do is safe for
// concurrent use with distinct Tasks; a single Task must not be submitted
// concurrently with itself.
func (s *Server) Do(t *Task) error {
	if t.done == nil {
		t.done = make(chan error, 1)
	}
	t.start = time.Now()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrServerClosed
	}
	s.tasks <- t
	s.mu.RUnlock()
	return <-t.done
}

// Submit answers one query through the default solve path. It is the
// convenience form of Do with a fresh Task per call.
func (s *Server) Submit(q dataset.Query) (Result, error) {
	t := Task{Query: q}
	err := s.Do(&t)
	return t.Result, err
}

// Close stops accepting new requests, serves everything already queued,
// and waits for the workers to exit. It is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.tasks)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// worker owns one planner and serves tasks until the channel closes.
func (s *Server) worker(ws *workerState) {
	defer s.wg.Done()
	p := s.d.NewPlanner()
	for t := range s.tasks {
		t.done <- s.serve(p, ws, t)
	}
}

// serve answers one task on the worker's planner and records its latency.
func (s *Server) serve(p *dataset.Planner, ws *workerState, t *Task) error {
	t.Result = Result{} // a reused Task must never carry a stale answer
	matched := false
	qi, err := p.Instantiate(t.Query)
	if err == nil {
		if t.Visit != nil {
			err = t.Visit(qi)
		} else {
			var region *core.Region
			region, err = Solve(qi, t.Query.Delta, s.opts)
			if err == nil && region != nil {
				matched = true
				nodes := t.nodes[:0] // reuse the task's pooled backing array
				for _, v := range region.Nodes {
					nodes = append(nodes, qi.Sub.ToParent[v])
				}
				t.nodes = nodes
				t.Result = Result{Matched: true, Score: region.Score, Length: region.Length, Nodes: nodes}
			}
		}
	}
	ws.record(time.Since(t.start), matched)
	return err
}
