package queryengine

import (
	"container/heap"
	"sync"
	"time"
)

// edfQueue re-orders admitted tasks earliest-deadline-first: a
// dispatcher goroutine drains the server's admission channel into this
// heap and workers pop from it, so under load the request closest to
// its deadline is served next instead of the one that happened to
// arrive first. FIFO ordering is preserved as the tie-break (by
// admission sequence), and requests with no deadline sort after every
// request with one — a client that declared urgency outranks one that
// declared none.
//
// The heap is bounded at the server's Queue capacity: push blocks once
// the heap is full, which stalls the dispatcher, which in turn makes
// Do's channel send block — the same backpressure the FIFO channel
// gives, just one hop removed. Without the bound the dispatcher would
// drain the bounded channel as fast as requests arrive and the heap
// would grow without limit under sustained overload.
type edfQueue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond // signaled by push; waited on by pop
	notFull  *sync.Cond // signaled by pop; waited on by push
	items    edfHeap
	cap      int
	seq      uint64
	closed   bool
}

type edfItem struct {
	t        *Task
	deadline time.Time
	hasDL    bool
	seq      uint64
}

type edfHeap []edfItem

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.hasDL != b.hasDL {
		return a.hasDL
	}
	if a.hasDL && !a.deadline.Equal(b.deadline) {
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}
func (h edfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)   { *h = append(*h, x.(edfItem)) }
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = edfItem{} // drop the *Task reference
	*h = old[:n-1]
	return it
}

func newEDFQueue(capacity int) *edfQueue {
	if capacity < 1 {
		capacity = 1
	}
	q := &edfQueue{cap: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// push enqueues t, blocking while the heap is at capacity (that stall
// is the server's backpressure). A push racing close still lands — the
// sole pusher is the dispatcher and it closes the queue only after its
// final push — so no admitted task is ever dropped.
func (q *edfQueue) push(t *Task) {
	dl, ok := t.ctx().Deadline()
	q.mu.Lock()
	for len(q.items) >= q.cap && !q.closed {
		q.notFull.Wait()
	}
	q.seq++
	heap.Push(&q.items, edfItem{t: t, deadline: dl, hasDL: ok, seq: q.seq})
	q.mu.Unlock()
	q.notEmpty.Signal()
}

// close marks the queue finished; pops drain what remains, then report
// closed.
func (q *edfQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// pop blocks until a task is available or the queue is closed and empty.
func (q *edfQueue) pop() (*Task, bool) {
	q.mu.Lock()
	for len(q.items) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.items) == 0 {
		q.mu.Unlock()
		return nil, false
	}
	it := heap.Pop(&q.items).(edfItem)
	q.mu.Unlock()
	q.notFull.Signal()
	return it.t, true
}
