package queryengine

import (
	"container/heap"
	"sync"
	"time"
)

// edfQueue re-orders admitted tasks earliest-deadline-first. Admission
// (and its backpressure) still happens through the server's bounded
// channel; a dispatcher goroutine drains that channel into this heap and
// workers pop from it, so under load the request closest to its deadline
// is served next instead of the one that happened to arrive first. FIFO
// ordering is preserved as the tie-break (by admission sequence), and
// requests with no deadline sort after every request with one — a client
// that declared urgency outranks one that declared none.
type edfQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  edfHeap
	seq    uint64
	closed bool
}

type edfItem struct {
	t        *Task
	deadline time.Time
	hasDL    bool
	seq      uint64
}

type edfHeap []edfItem

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.hasDL != b.hasDL {
		return a.hasDL
	}
	if a.hasDL && !a.deadline.Equal(b.deadline) {
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}
func (h edfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)   { *h = append(*h, x.(edfItem)) }
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = edfItem{} // drop the *Task reference
	*h = old[:n-1]
	return it
}

func newEDFQueue() *edfQueue {
	q := &edfQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *edfQueue) push(t *Task) {
	dl, ok := t.ctx().Deadline()
	q.mu.Lock()
	q.seq++
	heap.Push(&q.items, edfItem{t: t, deadline: dl, hasDL: ok, seq: q.seq})
	q.mu.Unlock()
	q.cond.Signal()
}

// close marks the queue finished; pops drain what remains, then report
// closed.
func (q *edfQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks until a task is available or the queue is closed and empty.
func (q *edfQueue) pop() (*Task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	it := heap.Pop(&q.items).(edfItem)
	return it.t, true
}
