package queryengine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

func testWorkload(t *testing.T, scale float64, count int) (*dataset.Dataset, []dataset.Query) {
	t.Helper()
	d, err := dataset.NYLike(dataset.Config{Seed: 7, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(70))
	qs, err := d.GenQueries(rng, count, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	return d, qs
}

// TestParallelMatchesSerial is the golden guarantee: for every method, a
// parallel run must produce bit-identical results to the serial run on the
// same seeded workload.
func TestParallelMatchesSerial(t *testing.T) {
	d, qs := testWorkload(t, 0.12, 12)
	for _, method := range []Method{MethodTGEN, MethodGreedy, MethodAPP} {
		serial, err := Run(context.Background(), d, qs, Options{Workers: 1, Method: method})
		if err != nil {
			t.Fatalf("%v serial: %v", method, err)
		}
		matched := 0
		for _, r := range serial {
			if r.Matched {
				matched++
			}
		}
		if matched == 0 {
			t.Fatalf("%v: workload produced no matches; test is vacuous", method)
		}
		for _, workers := range []int{2, 4, 0} {
			parallel, err := Run(context.Background(), d, qs, Options{Workers: workers, Method: method})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", method, workers, err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%v: workers=%d results differ from serial", method, workers)
			}
		}
	}
}

// TestRepeatedRunsDeterministic re-runs the same workload and demands
// identical output (guards against map-iteration or scheduling leaks).
func TestRepeatedRunsDeterministic(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 8)
	first, err := Run(context.Background(), d, qs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(context.Background(), d, qs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("two runs of the same workload differ")
	}
}

func TestRunFuncPropagatesError(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 8)
	boom := errors.New("boom")
	err := RunFunc(context.Background(), d, qs, 4, func(i int, qi *dataset.QueryInstance) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunUnknownMethod(t *testing.T) {
	d, qs := testWorkload(t, 0.1, 2)
	if _, err := Run(context.Background(), d, qs, Options{Method: Method(99)}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunEmptyWorkload(t *testing.T) {
	d, _ := testWorkload(t, 0.1, 2)
	res, err := Run(context.Background(), d, nil, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty workload: res=%v err=%v", res, err)
	}
}
