// Package queryengine executes LCMSR queries across a pool of workers, in
// two modes sharing one execution core:
//
//   - Batch (Run/RunFunc): a fixed query slice fanned out over workers,
//     used by experiments and RunBatch.
//   - Streaming (Server): a long-lived service fed through a bounded
//     request channel, with graceful shutdown and per-request latency
//     percentiles, used by Database.Serve and cmd/lcmsr -serve.
//
// Each worker owns one dataset.Planner — a pooled extractor, instance,
// query/search scratch, and buffers — so steady-state query execution
// reuses memory instead of allocating per query, and throughput scales
// with worker count while results stay bit-identical to the serial path.
//
// # Concurrency model and pooling ownership
//
// The Dataset (graph, vocabulary, grid index) is immutable at query time
// and shared read-only by all workers; the grid's MemStore is safe for
// concurrent reads, BTreeStore serializes tree access behind one mutex,
// and ShardedStore stripes cells across independently locked shards so
// workers' cold posting fetches only contend when they hit the same shard.
// All mutable per-query state lives in the worker-local Planner,
// which only its owning goroutine touches; a QueryInstance handed to a
// callback (RunFunc's fn, Task.Visit) aliases that planner's buffers and
// is valid only for the duration of the call. In batch mode work is
// distributed by an atomic cursor over the query slice and results are
// written to disjoint slots, so output order (and content — extraction,
// scoring, and the solvers are deterministic) is independent of
// scheduling; the streaming server inherits the same guarantee because
// every request is answered from the same immutable state.
package queryengine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/roadnet"
)

// Method selects the query-answering algorithm.
type Method int

const (
	// MethodTGEN is the tuple-generation heuristic (§5), the default.
	MethodTGEN Method = iota
	// MethodAPP is the (5+ε)-approximation algorithm (§4).
	MethodAPP
	// MethodGreedy is the fast greedy expansion (§6.1).
	MethodGreedy
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodTGEN:
		return "TGEN"
	case MethodAPP:
		return "APP"
	case MethodGreedy:
		return "Greedy"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options tunes a workload run.
type Options struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Method picks the algorithm (default MethodTGEN).
	Method Method
	// APP tunes MethodAPP.
	APP core.APPOptions
	// TGEN tunes MethodTGEN; Alpha == 0 auto-sizes α per query region so
	// σ̂max ≈ 9 (the regime the paper's fixed α inhabits at its scale).
	TGEN core.TGENOptions
	// Greedy tunes MethodGreedy.
	Greedy core.GreedyOptions
}

// Result is the outcome of one query of a workload, expressed in parent
// (road-network) node IDs so it is comparable across runs.
type Result struct {
	// Matched reports whether any region matched the query.
	Matched bool
	// Score is the region's total weight Σ σv.
	Score float64
	// Length is the region's total road length.
	Length float64
	// Nodes are the parent node IDs of the region, ascending.
	Nodes []roadnet.NodeID
}

// RunFunc executes fn for every query, fanning out across workers. Each
// worker owns a pooled Planner; fn receives the query index and the
// materialized working graph, whose buffers are valid only for the
// duration of the call. The first error cancels the remaining work, as
// does ctx: once ctx is done, workers stop picking up queries and the
// call returns ctx.Err() (callbacks already running observe the same ctx
// through Solve's checkpoints).
func RunFunc(ctx context.Context, d *dataset.Dataset, queries []dataset.Query, workers int, fn func(i int, qi *dataset.QueryInstance) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if len(queries) == 0 {
		return ctx.Err()
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstE  error
		wg      sync.WaitGroup
	)
	report := func(err error) {
		errOnce.Do(func() { firstE = err })
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			p := d.NewPlanner()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					report(err)
					return
				}
				qi, err := p.Instantiate(queries[i])
				if err != nil {
					report(fmt.Errorf("queryengine: query %d: %w", i, err))
					return
				}
				if err := fn(i, qi); err != nil {
					report(fmt.Errorf("queryengine: query %d: %w", i, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstE
}

// Run answers every query of the workload with the configured method and
// returns one Result per query. The results are identical for any worker
// count, including the serial Workers == 1 path.
func Run(ctx context.Context, d *dataset.Dataset, queries []dataset.Query, opts Options) ([]Result, error) {
	results := make([]Result, len(queries))
	err := RunFunc(ctx, d, queries, opts.Workers, func(i int, qi *dataset.QueryInstance) error {
		region, err := Solve(ctx, qi, queries[i].Delta, opts)
		if err != nil {
			return err
		}
		if region == nil {
			return nil
		}
		nodes := make([]roadnet.NodeID, len(region.Nodes))
		for j, v := range region.Nodes {
			nodes[j] = qi.Sub.ToParent[v]
		}
		results[i] = Result{Matched: true, Score: region.Score, Length: region.Length, Nodes: nodes}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Solve runs the configured algorithm on one materialized query. Callers
// composing their own RunFunc loops (package repro's RunBatch) share this
// dispatch so method selection lives in one place. When the instance
// carries its planner's SolveScratch (always, through Planner.Instantiate)
// the pooled solver path runs — bit-identical results, zero steady-state
// allocations, and mid-solve cancellation: a cancelled ctx makes Solve
// return ctx.Err() within a bounded number of solver iterations. The
// returned region is valid only until the next solve on the same planner.
// The scratch-less fallback path honors ctx only on entry.
func Solve(ctx context.Context, qi *dataset.QueryInstance, delta float64, opts Options) (*core.Region, error) {
	tgen := opts.TGEN
	if tgen.Alpha == 0 {
		tgen.Alpha = autoAlpha(qi.In.NumNodes)
	}
	if qi.Scratch == nil {
		// Scratch-less fallback: the allocating solvers have no internal
		// checkpoints, so honor the context at call granularity.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch opts.Method {
		case MethodAPP:
			return core.APP(qi.In, delta, opts.APP)
		case MethodGreedy:
			return core.Greedy(qi.In, delta, opts.Greedy)
		case MethodTGEN:
			return core.TGEN(qi.In, delta, tgen)
		default:
			return nil, fmt.Errorf("unknown method %v", opts.Method)
		}
	}
	switch opts.Method {
	case MethodAPP:
		return core.SolveAPP(ctx, qi.Scratch, qi.In, delta, opts.APP)
	case MethodGreedy:
		return core.SolveGreedy(ctx, qi.Scratch, qi.In, delta, opts.Greedy)
	case MethodTGEN:
		return core.SolveTGEN(ctx, qi.Scratch, qi.In, delta, tgen)
	default:
		return nil, fmt.Errorf("unknown method %v", opts.Method)
	}
}

// autoAlpha sizes TGEN's α so σ̂max ≈ 9 regardless of the region's node
// count (matches the package repro default).
func autoAlpha(numNodes int) float64 {
	a := float64(numNodes) / 9
	if a < 1 {
		a = 1
	}
	return a
}
