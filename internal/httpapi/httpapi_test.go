package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/queryengine"
)

// fakeBackend scripts Query responses for handler-mechanics tests.
type fakeBackend struct {
	query func(ctx context.Context, req QueryRequest) (QueryResponse, error)
	stats Stats
}

func (f fakeBackend) Query(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	return f.query(ctx, req)
}
func (f fakeBackend) Stats() Stats { return f.stats }

func postJSON(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestQueryDecodesAndAnswers(t *testing.T) {
	var got QueryRequest
	h := NewHandler(fakeBackend{query: func(_ context.Context, req QueryRequest) (QueryResponse, error) {
		got = req
		return QueryResponse{Matched: true, Regions: []Region{{Score: 2.5, Nodes: []int{1, 2}}}}, nil
	}}, Options{})
	w := postJSON(t, h, `{"keywords":["cafe","bar"],"delta":5000,
		"region":{"min_x":1,"min_y":2,"max_x":3,"max_y":4},"method":"app","k":2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if len(got.Keywords) != 2 || got.Delta != 5000 || got.Method != "app" || got.K != 2 ||
		got.Region != (Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}) {
		t.Fatalf("decoded request = %+v", got)
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Matched || len(resp.Regions) != 1 || resp.Regions[0].Score != 2.5 {
		t.Fatalf("response = %+v", resp)
	}
}

func TestQueryRejectsBadBodies(t *testing.T) {
	h := NewHandler(fakeBackend{query: func(context.Context, QueryRequest) (QueryResponse, error) {
		return QueryResponse{}, nil
	}}, Options{})
	for _, body := range []string{"not json", `{"keywords":["a"],"detla":1}`} {
		if w := postJSON(t, h, body); w.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400", body, w.Code)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := NewHandler(fakeBackend{}, Options{})
	req := httptest.NewRequest(http.MethodGet, "/query", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed || w.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("GET /query: status = %d Allow = %q", w.Code, w.Header().Get("Allow"))
	}
	req = httptest.NewRequest(http.MethodPost, "/stats", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed || w.Header().Get("Allow") != http.MethodGet {
		t.Fatalf("POST /stats: status = %d Allow = %q", w.Code, w.Header().Get("Allow"))
	}
}

func TestErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
	}{
		{fmt.Errorf("%w: delta must be positive", ErrBadRequest), http.StatusBadRequest},
		{queryengine.ErrOverloaded, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{fmt.Errorf("solver exploded"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		h := NewHandler(fakeBackend{query: func(context.Context, QueryRequest) (QueryResponse, error) {
			return QueryResponse{}, c.err
		}}, Options{})
		w := postJSON(t, h, `{"keywords":["a"],"delta":1}`)
		if w.Code != c.status {
			t.Fatalf("err %v: status = %d, want %d", c.err, w.Code, c.status)
		}
		var eb errorBody
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Fatalf("err %v: error body %q (%v)", c.err, w.Body, err)
		}
		if c.status == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
			t.Fatal("503 without Retry-After")
		}
	}
}

func TestTimeoutAppliesTighterOfServerAndClient(t *testing.T) {
	// The backend reports the deadline it observed so the test can check
	// which bound won.
	h := NewHandler(fakeBackend{query: func(ctx context.Context, _ QueryRequest) (QueryResponse, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			return QueryResponse{}, fmt.Errorf("no deadline")
		}
		if remaining := time.Until(dl); remaining > 50*time.Millisecond {
			return QueryResponse{}, fmt.Errorf("deadline too loose: %v", remaining)
		}
		<-ctx.Done() // simulate a solve outliving the deadline
		return QueryResponse{}, ctx.Err()
	}}, Options{Timeout: time.Hour})
	w := postJSON(t, h, `{"keywords":["a"],"delta":1,"timeout_ms":20}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body %s, want 504", w.Code, w.Body)
	}

	// The client cannot extend the server bound.
	h = NewHandler(fakeBackend{query: func(ctx context.Context, _ QueryRequest) (QueryResponse, error) {
		dl, ok := ctx.Deadline()
		if !ok || time.Until(dl) > 50*time.Millisecond {
			return QueryResponse{}, fmt.Errorf("server bound not applied")
		}
		return QueryResponse{}, nil
	}}, Options{Timeout: 20 * time.Millisecond})
	if w := postJSON(t, h, `{"keywords":["a"],"delta":1,"timeout_ms":60000}`); w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s, want 200", w.Code, w.Body)
	}
}

func TestClientDisconnectWritesNothing(t *testing.T) {
	h := NewHandler(fakeBackend{query: func(ctx context.Context, _ QueryRequest) (QueryResponse, error) {
		<-ctx.Done()
		return QueryResponse{}, ctx.Err()
	}}, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(`{"keywords":["a"],"delta":1}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(w, req)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	<-done
	if w.Body.Len() != 0 {
		t.Fatalf("handler wrote %q to a disconnected client", w.Body)
	}
}

func TestStats(t *testing.T) {
	st := Stats{Served: 7, Matched: 5, Errors: 1, Shed: 2, Window: 7, P50Ms: 1.5, MaxMs: 9}
	h := NewHandler(fakeBackend{stats: st}, Options{})
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var got Stats
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("stats = %+v, want %+v", got, st)
	}
}
