// Package httpapi is the JSON-over-HTTP front end of the streaming query
// server: POST /query answers LCMSR queries, GET /stats reports the
// server's counters and latency percentiles.
//
// The package owns the wire shapes and the HTTP mechanics — request
// decoding, per-request deadlines, client-disconnect propagation, and
// error-to-status mapping — while the Backend interface keeps it
// decoupled from the public repro package (which wires a Server into a
// Backend in serve_http.go).
//
// # Deadlines and disconnects
//
// Every query runs under the incoming request's context, so a client
// that disconnects cancels the solve mid-flight (net/http cancels
// r.Context()). On top of that the handler applies the tighter of the
// server-configured Options.Timeout and the client's timeout_ms field;
// a missed deadline answers 504, an admission-shed request answers 503
// with Retry-After, and a malformed request answers 400.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/queryengine"
)

// ErrBadRequest marks client errors: a Backend wraps validation failures
// with it (fmt.Errorf("%w: ...", httpapi.ErrBadRequest)) and the handler
// answers 400 instead of 500.
var ErrBadRequest = errors.New("bad request")

// Rect is the wire form of a query rectangle Q.Λ.
type Rect struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// QueryRequest is the JSON body of POST /query.
type QueryRequest struct {
	// Keywords is the query keyword set Q.ψ (required, non-empty).
	Keywords []string `json:"keywords"`
	// Delta is the length constraint Q.∆ in coordinate units (required, > 0).
	Delta float64 `json:"delta"`
	// Region is the rectangular region of interest Q.Λ.
	Region Rect `json:"region"`
	// Method optionally overrides the server's configured algorithm:
	// "tgen", "app", "greedy", or "auto" (case-insensitive). Empty keeps
	// the server default; "auto" lets the server-side cost planner pick
	// per request against the deadline.
	Method string `json:"method,omitempty"`
	// K, when > 1, asks for the top-K disjoint regions.
	K int `json:"k,omitempty"`
	// TimeoutMs optionally tightens the per-request deadline below the
	// server-configured bound. It can never extend it.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Explain asks for the EXPLAIN plan fragment in the response.
	Explain bool `json:"explain,omitempty"`
}

// Object is one relevant object of a result region.
type Object struct {
	ID    int     `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Score float64 `json:"score"`
}

// Edge is one road segment of a result region.
type Edge struct {
	U      int     `json:"u"`
	V      int     `json:"v"`
	Length float64 `json:"length"`
}

// Region is the wire form of one result region.
type Region struct {
	Score   float64  `json:"score"`
	Length  float64  `json:"length"`
	Nodes   []int    `json:"nodes"`
	Edges   []Edge   `json:"edges"`
	Objects []Object `json:"objects"`
}

// QueryResponse is the JSON body answering POST /query.
type QueryResponse struct {
	// Matched reports whether any region matched; false with empty
	// Regions is a valid empty answer, not an error.
	Matched bool `json:"matched"`
	// Regions holds the result regions, best first.
	Regions []Region `json:"regions"`
	// Plan is the EXPLAIN fragment, present only when the request set
	// explain.
	Plan *Plan `json:"plan,omitempty"`
}

// Plan is the wire form of the EXPLAIN annotation. Unlike the rest of
// the wire surface it uses camelCase keys — the fragment is aimed at
// dashboards and jq one-liners (`.plan.method`, `.plan.cellsSkipped`),
// and those keys are part of the documented surface (docs/PLANS.md).
type Plan struct {
	// Method is the solver that answered ("TGEN", "APP", "Greedy"); with
	// auto=true it was chosen by the cost planner, and reason says why.
	Method   string `json:"method"`
	Auto     bool   `json:"auto,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Costs are milliseconds: the budget the planner chose against, the
	// model's estimate for the chosen method, and the measured service
	// time (queue wait excluded).
	BudgetMs    float64 `json:"budgetMs,omitempty"`
	EstimateMs  float64 `json:"estimateMs"`
	ActualMs    float64 `json:"actualMs"`
	EstGreedyMs float64 `json:"estGreedyMs,omitempty"`
	EstTGENMs   float64 `json:"estTgenMs,omitempty"`
	EstAPPMs    float64 `json:"estAppMs,omitempty"`
	// Nodes is the working-graph size the estimates used.
	Nodes int `json:"nodes"`
	// Cell accounting: cellsInRect = cellsScanned + cellsSkipped, with
	// the skip reasons broken out (empty directory, no shared term,
	// score-cache hit). cellsPrunedWand is the top-k object path's WAND
	// cutoff (zero on the standard serving path).
	CellsInRect        int64 `json:"cellsInRect"`
	CellsScanned       int64 `json:"cellsScanned"`
	CellsSkipped       int64 `json:"cellsSkipped"`
	CellsSkippedEmpty  int64 `json:"cellsSkippedEmpty,omitempty"`
	CellsSkippedNoTerm int64 `json:"cellsSkippedNoTerm,omitempty"`
	CellsSkippedCache  int64 `json:"cellsSkippedCache,omitempty"`
	CellsPrunedWAND    int64 `json:"cellsPrunedWand,omitempty"`
	// Posting-level accounting and the resulting candidate objects.
	PostingLists     int64 `json:"postingLists"`
	Postings         int64 `json:"postings"`
	PostingsFiltered int64 `json:"postingsFiltered,omitempty"`
	Candidates       int64 `json:"candidates"`
	// Cluster is the coordinator's routing fragment (cluster serving only).
	Cluster *ClusterPlan `json:"cluster,omitempty"`
}

// ClusterPlan is the plan's cluster routing fragment: replica groups
// contacted for the scattered search vs. skipped by the rectangle or
// term-directory route checks.
type ClusterPlan struct {
	GroupsContacted   int64 `json:"groupsContacted"`
	GroupsSkippedRect int64 `json:"groupsSkippedRect,omitempty"`
	GroupsSkippedTerm int64 `json:"groupsSkippedTerm,omitempty"`
}

// Stats is the JSON body answering GET /stats. Latencies are reported in
// milliseconds.
type Stats struct {
	Served  int64   `json:"served"`
	Matched int64   `json:"matched"`
	Errors  int64   `json:"errors"`
	Shed    int64   `json:"shed"`
	Panics  int64   `json:"panics"`
	Window  int     `json:"window"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
	// Tombstones is the count of deleted objects whose postings still
	// await compaction in the backing index.
	Tombstones int `json:"tombstones"`
	// ScoreCache carries the hot-query score cache counters when the
	// backing database has one enabled; omitted otherwise.
	ScoreCache *ScoreCacheStats `json:"score_cache,omitempty"`
	// Cluster carries the coordinator's routing and per-node counters when
	// the backend serves a multi-node cluster; omitted for single-process
	// serving.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ScoreCacheStats is the /stats fragment for the hot-query score cache.
type ScoreCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// ClusterStats is the /stats fragment aggregating the whole cluster:
// coordinator routing counters plus one entry per node connection.
type ClusterStats struct {
	Searches    int64              `json:"searches"`
	SkippedRect int64              `json:"skipped_rect"`
	SkippedTerm int64              `json:"skipped_term"`
	Retries     int64              `json:"retries"`
	NoReplica   int64              `json:"no_replica"`
	QuotaDenied int64              `json:"quota_denied"`
	Groups      int                `json:"groups"`
	Nodes       []ClusterNodeStats `json:"nodes,omitempty"`
}

// ClusterNodeStats is one node connection's slice of ClusterStats.
// Latencies are RPC round-trips measured at the coordinator.
type ClusterNodeStats struct {
	Addr    string  `json:"addr"`
	CellLo  uint32  `json:"cell_lo"`
	CellHi  uint32  `json:"cell_hi"`
	Sent    int64   `json:"sent"`
	Errors  int64   `json:"errors"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	Samples int     `json:"samples"`
}

// clientKey carries the requester's identity (remote host) in the query
// context for per-client quota admission at a cluster coordinator.
type clientKey struct{}

// ClientID extracts the requesting client's identity set by the handler
// (the remote host, ports stripped so one client is one bucket), or ""
// when the query did not arrive over HTTP.
func ClientID(ctx context.Context) string {
	id, _ := ctx.Value(clientKey{}).(string)
	return id
}

// WithClientID returns ctx carrying id for ClientID. The handler applies
// it automatically; tests and non-HTTP front ends may set it directly.
func WithClientID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, clientKey{}, id)
}

// Backend answers decoded queries; the public repro package implements it
// over a streaming Server.
type Backend interface {
	// Query answers one request under ctx. Validation failures should
	// wrap ErrBadRequest; cancellation/deadline/overload errors pass
	// through untranslated and the handler maps them to statuses.
	Query(ctx context.Context, req QueryRequest) (QueryResponse, error)
	// Stats snapshots the serving counters.
	Stats() Stats
}

// Options configures the handler.
type Options struct {
	// Timeout bounds every /query request (a context deadline around the
	// solve); clients may tighten it per request via timeout_ms but never
	// extend it. Zero leaves requests bounded only by the client.
	Timeout time.Duration
	// MaxBodyBytes caps the /query body size; <= 0 selects 1 MiB.
	MaxBodyBytes int64
}

// NewHandler returns the HTTP handler serving POST /query and GET /stats
// over the backend.
func NewHandler(b Backend, opts Options) http.Handler {
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req QueryRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
			return
		}
		ctx := r.Context()
		timeout := opts.Timeout
		if req.TimeoutMs > 0 {
			if t := time.Duration(req.TimeoutMs) * time.Millisecond; timeout == 0 || t < timeout {
				timeout = t
			}
		}
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		if host, _, splitErr := net.SplitHostPort(r.RemoteAddr); splitErr == nil && host != "" {
			ctx = WithClientID(ctx, host)
		} else if r.RemoteAddr != "" {
			ctx = WithClientID(ctx, r.RemoteAddr)
		}
		resp, err := b.Query(ctx, req)
		if err != nil {
			writeQueryError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, b.Stats())
	})
	return mux
}

// writeQueryError maps a backend error onto an HTTP status.
func writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, cluster.ErrQuotaExceeded):
		// The client outran its token bucket; its budget refills with time.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, queryengine.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, cluster.ErrNoReplica):
		// Every replica of some cell range failed; the cluster is degraded
		// but replicas may come back — retryable, 503.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, grid.ErrShardIO):
		// The posting store lost a read (after a retry); the query is
		// retryable — the store may recover or a scrub may isolate the
		// damage — so 503, not 500.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// The client disconnected; nobody is reading the response.
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The status line is gone already; nothing useful remains to send.
		_ = err
	}
}

// MillisOf converts a duration to the wire millisecond form.
func MillisOf(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
