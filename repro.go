// Package repro is a Go implementation of the length-constrained
// maximum-sum region (LCMSR) query of Cao, Cong, Jensen and Yiu,
// "Retrieving Regions of Interest for User Exploration", PVLDB 7(9), 2014.
//
// Given a road network with geo-textual points of interest, an LCMSR query
// ⟨keywords, ∆, Λ⟩ returns the connected subgraph of the network inside
// the rectangle Λ whose total road length is at most ∆ and whose points
// of interest are maximally relevant to the keywords — the "best region
// to go explore". Answering the query exactly is NP-hard; the package
// provides the paper's three algorithms:
//
//   - MethodAPP — the (5+ε)-approximation with a provable quality bound;
//   - MethodTGEN — the tuple-generation heuristic (best accuracy and
//     speed in practice, the recommended default);
//   - MethodGreedy — fast frontier expansion with lower accuracy.
//
// A Database is built either from caller-supplied nodes, edges and
// objects (New) or from the built-in synthetic datasets mirroring the
// paper's experimental setting (NYLike, USANWLike). The API is
// context-first: every query path — Do (the unified Request/Response
// form), the Run/RunTopK wrappers, RunBatch, and a Server's Do/Submit —
// takes a context.Context whose cancellation or deadline is honored
// mid-solve, so a slow query can always be bounded. Database.Serve
// starts a streaming server with deadline-aware admission and load
// shedding; Server.HTTPHandler exposes it over HTTP as JSON.
//
// Basic usage:
//
//	db, err := repro.NYLike(1, 0.25)
//	...
//	qs, err := db.GenQueries(rand.New(rand.NewSource(1)), 1, 3, 100e6, 10_000)
//	...
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	res, err := db.Run(ctx, qs[0], repro.SearchOptions{})
//	fmt.Println(res.Score, res.Length, len(res.Objects))
package repro

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/roadnet"
)

// Rect is an axis-aligned rectangle in the dataset's planar coordinate
// system (metres for the built-in datasets).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

func (r Rect) toGeo() geo.Rect {
	return geo.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

func fromGeo(r geo.Rect) Rect { return Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY} }

// Query is an LCMSR query ⟨ψ, ∆, Λ⟩.
type Query struct {
	// Keywords is the query keyword set Q.ψ.
	Keywords []string
	// Delta is the length constraint Q.∆: the maximum total road length
	// of the returned region, in coordinate units.
	Delta float64
	// Region is the rectangular region of interest Q.Λ.
	Region Rect
	// Weighting selects how matching objects are scored (§2 allows
	// several definitions of an object's weight). Zero value: relevance.
	Weighting Weighting
}

// Weighting is the object-weight definition used for a query (§2).
type Weighting int

const (
	// WeightingRelevance uses the vector-space text relevance σ(o.ψ, Q.ψ)
	// of Equation (1)/(2) — the paper's default.
	WeightingRelevance Weighting = iota
	// WeightingRating uses the object's rating/popularity when it matches
	// the keywords, zero otherwise.
	WeightingRating
	// WeightingLanguageModel uses the Dirichlet-smoothed language model
	// (the alternative IR model §3 mentions).
	WeightingLanguageModel
)

// NodeSpec declares a road-network node at a planar position.
type NodeSpec struct {
	X, Y float64
}

// EdgeSpec declares an undirected road segment. A zero Length means
// "use the Euclidean distance between the endpoints".
type EdgeSpec struct {
	U, V   int
	Length float64
}

// ObjectSpec declares a geo-textual object: a location and a free-text
// description (tokenized on non-alphanumeric boundaries, lowercased).
type ObjectSpec struct {
	X, Y float64
	Text string
}

// Database is a queryable LCMSR database: a road network, its
// geo-textual objects, and the text/spatial indexes over them. The
// object set is live — Insert, Delete and Reweight mutate it while
// queries keep running (queries serialize against mutations through an
// internal reader/writer lock and always observe a consistent state).
type Database struct {
	ds *dataset.Dataset
}

// New builds a Database from explicit nodes, edges and objects. Objects
// are snapped to their nearest road node, as in the paper's preprocessing.
func New(nodes []NodeSpec, edges []EdgeSpec, objects []ObjectSpec) (*Database, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("repro: need at least one node")
	}
	if len(objects) == 0 {
		return nil, fmt.Errorf("repro: need at least one object")
	}
	b := roadnet.NewBuilder()
	for _, n := range nodes {
		b.AddNode(geo.Point{X: n.X, Y: n.Y})
	}
	for i, e := range edges {
		var err error
		if e.Length == 0 {
			err = b.AddEdgeEuclidean(roadnet.NodeID(e.U), roadnet.NodeID(e.V))
		} else {
			err = b.AddEdge(roadnet.NodeID(e.U), roadnet.NodeID(e.V), e.Length)
		}
		if err != nil {
			return nil, fmt.Errorf("repro: edge %d: %w", i, err)
		}
	}
	g := b.Build()
	ds, err := dataset.FromObjects("custom", g, toObjectInputs(objects))
	if err != nil {
		return nil, err
	}
	return &Database{ds: ds}, nil
}

func toObjectInputs(objects []ObjectSpec) []dataset.ObjectInput {
	out := make([]dataset.ObjectInput, len(objects))
	for i, o := range objects {
		out[i] = dataset.ObjectInput{Point: geo.Point{X: o.X, Y: o.Y}, Text: o.Text}
	}
	return out
}

// NYLike builds the synthetic Manhattan-style dataset mirroring the
// paper's New York setting (see DESIGN.md for the scale mapping). The
// seed makes the build reproducible; scale multiplies the default size
// (1.0 ≈ 3.6k road nodes and 6.8k objects).
func NYLike(seed int64, scale float64) (*Database, error) {
	return NYLikeWithStore(seed, scale, StoreConfig{})
}

// USANWLike builds the synthetic northwest-USA-style dataset (sparser
// rural network, tag-style text). scale 1.0 ≈ 5k nodes and objects.
func USANWLike(seed int64, scale float64) (*Database, error) {
	return USANWLikeWithStore(seed, scale, StoreConfig{})
}

// StoreConfig selects the posting-list store backing the grid index.
// The zero value keeps posting lists in memory.
type StoreConfig struct {
	// Path is where the postings live on disk: a single B+-tree file when
	// Shards <= 1, a directory of per-shard trees when Shards > 1. Empty
	// keeps the postings in memory (combined with Shards > 1 it is an
	// error — shards need somewhere to live). The store is built fresh at
	// Path; building over an existing store is refused rather than
	// silently overwriting it.
	Path string
	// Shards > 1 partitions the cell space across that many independent
	// B+-trees (one file, page cache and lock each), so concurrent cold
	// reads scale with cores instead of serializing on one tree. The
	// count is recorded in the store's manifest header. 1 uses the
	// single-tree layout; 0 with a non-empty Path also means 1.
	Shards int
	// CachePages caps each tree's page cache (0 = default, 256 pages).
	CachePages int
	// NoSync disables the store's fsync discipline during the build. Bulk
	// index builds run much faster without per-commit fsyncs, at the price
	// that a crash mid-build can corrupt the store (rebuild it — the build
	// is reproducible). Leave it false for stores that must survive power
	// loss.
	NoSync bool
	// OpenExisting opens the store already at Path instead of creating a
	// fresh one. For a sharded store this restores the database exactly as
	// it was: committed metadata plus WAL replay recover every live update
	// applied before the last close, including updates that never reached
	// a compaction. (A single-file store carries no metadata; reopening
	// one is only correct if no live updates were ever applied to it.)
	// Shards is ignored — the shard count comes from the store manifest.
	OpenExisting bool
}

func (sc StoreConfig) open() (grid.Store, error) {
	if sc.Path == "" {
		if sc.Shards > 1 {
			return nil, fmt.Errorf("repro: a sharded store needs a directory path")
		}
		if sc.OpenExisting {
			return nil, fmt.Errorf("repro: OpenExisting needs a path")
		}
		return nil, nil // in-memory
	}
	if sc.OpenExisting {
		fi, err := os.Stat(sc.Path)
		if err != nil {
			return nil, fmt.Errorf("repro: open store: %w", err)
		}
		if fi.IsDir() {
			return grid.OpenShardedStoreWith(sc.Path, grid.ShardedOptions{CachePages: sc.CachePages, NoSync: sc.NoSync})
		}
		return grid.OpenBTreeStore(sc.Path)
	}
	if sc.Shards > 1 {
		return grid.CreateShardedStore(sc.Path, grid.ShardedOptions{Shards: sc.Shards, CachePages: sc.CachePages, NoSync: sc.NoSync})
	}
	return grid.NewBTreeStoreWith(sc.Path, btree.Options{CachePages: sc.CachePages, NoSync: sc.NoSync})
}

// ShardHealth is one shard's scrub outcome: Err is nil for a verified-
// consistent shard, a btree.ErrCorrupt-wrapping error for a damaged one.
// Pages/Keys summarize what the verifier walked.
type ShardHealth struct {
	Shard int
	Pages int
	Keys  uint64
	Err   error
}

// ScrubReport is the outcome of ScrubStore: one entry per shard (a
// single-tree store reports as shard 0).
type ScrubReport struct {
	Shards []ShardHealth
}

// Err returns every shard failure joined, or nil when the whole store
// verified clean.
func (r ScrubReport) Err() error {
	var errs []error
	for _, sh := range r.Shards {
		if sh.Err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", sh.Shard, sh.Err))
		}
	}
	return errors.Join(errs...)
}

// String renders one line per shard.
func (r ScrubReport) String() string {
	var b strings.Builder
	for _, sh := range r.Shards {
		if sh.Err != nil {
			fmt.Fprintf(&b, "shard %04d: CORRUPT: %v\n", sh.Shard, sh.Err)
		} else {
			fmt.Fprintf(&b, "shard %04d: ok: %d pages, %d keys\n", sh.Shard, sh.Pages, sh.Keys)
		}
	}
	return b.String()
}

// ScrubStore opens the posting store at path (either layout), verifies
// every page of every shard — checksums, page linkage, key order, counts —
// and reports per shard. A clean report means the store is readable end to
// end; a corrupt shard is reported (typed btree.ErrCorrupt) without
// touching the others. The store is opened read-only in effect (scrubbing
// writes nothing) and closed again before returning.
func ScrubStore(path string) (ScrubReport, error) {
	st, err := grid.OpenStore(path)
	if err != nil {
		return ScrubReport{}, fmt.Errorf("repro: scrub %s: %w", path, err)
	}
	defer st.Close()
	rep := st.Scrub()
	out := ScrubReport{Shards: make([]ShardHealth, len(rep.Shards))}
	for i, sh := range rep.Shards {
		out.Shards[i] = ShardHealth{Shard: sh.Shard, Pages: sh.Stats.Pages, Keys: sh.Stats.Keys, Err: sh.Err}
	}
	return out, nil
}

// NYLikeWithStore is NYLike with an explicit posting-store configuration;
// close the Database to flush and release a disk-backed store.
func NYLikeWithStore(seed int64, scale float64, sc StoreConfig) (*Database, error) {
	store, err := sc.open()
	if err != nil {
		return nil, err
	}
	ds, err := dataset.NYLike(dataset.Config{Seed: seed, Scale: scale, Store: store, Reopen: sc.OpenExisting})
	if err != nil {
		discardStore(store, sc.Path, sc.OpenExisting)
		return nil, err
	}
	return &Database{ds: ds}, nil
}

// USANWLikeWithStore is USANWLike with an explicit posting-store
// configuration.
func USANWLikeWithStore(seed int64, scale float64, sc StoreConfig) (*Database, error) {
	store, err := sc.open()
	if err != nil {
		return nil, err
	}
	ds, err := dataset.USANWLike(dataset.Config{Seed: seed, Scale: scale, Store: store, Reopen: sc.OpenExisting})
	if err != nil {
		discardStore(store, sc.Path, sc.OpenExisting)
		return nil, err
	}
	return &Database{ds: ds}, nil
}

// discardStore disposes of a store whose dataset build failed: the store
// was created by this call and holds partial postings, so leaving it
// would make the (create-fresh) retry fail on "already holds a store".
// Removal only touches the store's own files. A preexisting store
// (OpenExisting) is closed but never removed — it wasn't ours to create.
func discardStore(store grid.Store, path string, preexisting bool) {
	if c, ok := store.(interface{ Close() error }); ok {
		c.Close()
		if !preexisting {
			grid.RemoveStore(path)
		}
	}
}

// Close flushes and releases the posting store backing the Database when
// it is disk-backed; it is a no-op for in-memory databases. The Database
// must not be queried afterwards.
func (db *Database) Close() error { return db.ds.Close() }

// StoreStats reports the layout and page-cache counters of a disk-backed
// posting store.
type StoreStats struct {
	// Shards is the number of B+-tree shards (1 for the single-tree
	// layout).
	Shards int
	// CacheHits/CacheMisses/CacheEvictions aggregate page-cache traffic
	// across all shards since the store was opened.
	CacheHits, CacheMisses, CacheEvictions uint64
	// CachedPages is the number of pages currently resident.
	CachedPages int
	// Tombstones is the number of deleted objects whose postings are
	// filtered at query time and still await removal by the next Compact.
	// It is store-independent — in-memory databases report it too.
	Tombstones int
	// ScoreCache holds the hot-query score cache counters when one is
	// enabled (SetScoreCache); nil otherwise. It is store-independent —
	// in-memory databases report it too.
	ScoreCache *ScoreCacheStats
}

// ScoreCacheStats are the hot-query score cache counters: hits and misses
// of per-(cell, query) cached score replays, entries evicted by the
// bounded clock, and the current live entry count.
type ScoreCacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// StoreStats returns posting-store statistics, or ok == false when the
// Database uses the in-memory store and no score cache is enabled.
func (db *Database) StoreStats() (st StoreStats, ok bool) {
	st.Tombstones = db.ds.Index.TombstoneCount()
	if cs, cacheOK := db.ds.Index.ScoreCacheStats(); cacheOK {
		st.ScoreCache = &ScoreCacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
		}
		ok = true
	}
	s, hasStats := db.ds.Index.Store().(interface{ CacheStats() btree.CacheStats })
	if !hasStats {
		return st, ok
	}
	cs := s.CacheStats()
	st.Shards = 1
	st.CacheHits = cs.Hits
	st.CacheMisses = cs.Misses
	st.CacheEvictions = cs.Evictions
	st.CachedPages = cs.Resident
	if n, ok := s.(interface{ NumShards() int }); ok {
		st.Shards = n.NumShards()
	}
	return st, true
}

// SetScoreCache enables a bounded cache of roughly `entries` per-(cell,
// query) partial score contributions on the search path, or disables it
// when entries <= 0 (the default). Cached entries are keyed by the index
// update epoch, so every Insert/Delete/Reweight/Compact invalidates them
// wholesale; hot repeated queries then serve their interior cells from
// cache without touching the posting store, with answers bit-identical
// to the uncached path. Counters surface through StoreStats.
func (db *Database) SetScoreCache(entries int) {
	db.ds.Index.SetScoreCache(entries)
}

// NumNodes returns the number of road-network nodes.
func (db *Database) NumNodes() int { return db.ds.Graph.NumNodes() }

// NumEdges returns the number of road segments.
func (db *Database) NumEdges() int { return db.ds.Graph.NumEdges() }

// NumObjects returns the number of geo-textual objects (tombstoned ids
// from deletions stay counted — ids are never reused).
func (db *Database) NumObjects() int {
	db.ds.RLock()
	defer db.ds.RUnlock()
	return len(db.ds.Objects)
}

// ErrNoSuchObject reports a Delete or Reweight aimed at an id that was
// never allocated or that was already deleted.
var ErrNoSuchObject = grid.ErrNoSuchObject

// Insert adds a geo-textual object to the live database and returns its
// id (ids are dense and never reused). The object is immediately visible
// to queries; on a disk-backed sharded store it is durable in the
// write-ahead log before Insert returns. The text may be empty.
func (db *Database) Insert(o ObjectSpec) (int, error) {
	id, err := db.ds.Insert(geo.Point{X: o.X, Y: o.Y}, o.Text)
	return int(id), err
}

// Delete removes the object with the given id from the live database:
// it stops matching every query, but its id stays allocated (corpus
// statistics treat it as an empty document, so scores of the remaining
// objects match a database that never held it with an empty placeholder
// in its slot). Deleting a deleted or unknown id fails.
func (db *Database) Delete(id int) error {
	return db.ds.Delete(grid.ObjectID(id))
}

// Reweight scales the term weights of one object by factor (> 0): its
// relevance contribution to every matching query scales accordingly.
// The object's term set is fixed — to change text, Delete and Insert.
func (db *Database) Reweight(id int, factor float64) error {
	return db.ds.Reweight(grid.ObjectID(id), factor)
}

// Compact folds pending live updates into the posting store's shard
// trees and commits a metadata checkpoint, truncating the write-ahead
// logs. It bounds reopen time after many updates; queries pause for the
// duration. A no-op for in-memory databases. Compaction also runs
// automatically every few thousand updates and on Close.
func (db *Database) Compact() error { return db.ds.Compact() }

// Bounds returns the bounding rectangle of the road network.
func (db *Database) Bounds() Rect { return fromGeo(db.ds.Graph.BBox()) }

// GenQueries generates a reproducible query workload as §7.1 of the paper
// does: rectangles of the given area anchored at random object locations,
// keywords drawn from the terms present inside each rectangle weighted by
// frequency. areaM2 is the Λ area in squared coordinate units and delta
// the length budget.
func (db *Database) GenQueries(rng *rand.Rand, count, numKeywords int, areaM2, delta float64) ([]Query, error) {
	qs, err := db.ds.GenQueries(rng, count, numKeywords, areaM2, delta)
	if err != nil {
		return nil, err
	}
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = Query{Keywords: q.Keywords, Delta: q.Delta, Region: fromGeo(q.Lambda)}
	}
	return out, nil
}

// GenHotspotQueries generates a Zipfian hot-spot workload: `hotspots`
// distinct base queries (generated exactly as GenQueries does) replayed
// `count` times with Zipf(zipfS) popularity, the first base query being
// the hottest. zipfS must be > 1; around 1.1–1.5 matches real map-search
// skew. This is the workload SetScoreCache is built for.
func (db *Database) GenHotspotQueries(rng *rand.Rand, count, hotspots, numKeywords int, areaM2, delta, zipfS float64) ([]Query, error) {
	qs, err := db.ds.GenHotspotQueries(rng, count, hotspots, numKeywords, areaM2, delta, zipfS)
	if err != nil {
		return nil, err
	}
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = Query{Keywords: q.Keywords, Delta: q.Delta, Region: fromGeo(q.Lambda)}
	}
	return out, nil
}

// toDatasetQuery validates a public query and converts it for the engine.
func toDatasetQuery(q Query) (dataset.Query, error) {
	if len(q.Keywords) == 0 {
		return dataset.Query{}, fmt.Errorf("query has no keywords")
	}
	if q.Delta <= 0 {
		return dataset.Query{}, fmt.Errorf("query ∆ must be positive, got %v", q.Delta)
	}
	mode := dataset.WeightRelevance
	switch q.Weighting {
	case WeightingRating:
		mode = dataset.WeightRating
	case WeightingLanguageModel:
		mode = dataset.WeightLanguageModel
	}
	return dataset.Query{
		Keywords: q.Keywords,
		Delta:    q.Delta,
		Lambda:   q.Region.toGeo(),
		Mode:     mode,
	}, nil
}

// defaultTGENAlpha sizes TGEN's scaling parameter so that σ̂max ≈ 9
// regardless of how many nodes fall inside Λ; the paper's α = 400 on
// |VQ| in the thousands corresponds to the same σ̂max regime.
func defaultTGENAlpha(numNodes int) float64 {
	a := float64(numNodes) / 9
	if a < 1 {
		a = 1
	}
	return a
}

func toCoreOptions(opts SearchOptions, numNodes int) (core.APPOptions, core.TGENOptions, core.GreedyOptions) {
	appOpts := core.APPOptions{Alpha: opts.Alpha, Beta: opts.Beta}
	if opts.UseSPTSolver {
		appOpts.Solver = core.SolverSPT
	}
	tgenOpts := core.TGENOptions{Alpha: opts.Alpha}
	if tgenOpts.Alpha == 0 {
		tgenOpts.Alpha = defaultTGENAlpha(numNodes)
	}
	greedyOpts := core.GreedyOptions{Mu: opts.Mu, MuSet: opts.MuSet}
	return appOpts, tgenOpts, greedyOpts
}

// Load reads a Database from a dataset file written by cmd/datagen (or
// Database.Save); all indexes are rebuilt on load.
func Load(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("repro: load: %w", err)
	}
	defer f.Close()
	ds, err := dataset.Read(f)
	if err != nil {
		return nil, err
	}
	return &Database{ds: ds}, nil
}

// Save writes the Database's network and objects to a dataset file that
// Load can read back.
func (db *Database) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("repro: save: %w", err)
	}
	if _, err := db.ds.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
