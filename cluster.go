package repro

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/httpapi"
	"repro/internal/textindex"
)

// ErrQuotaExceeded is returned when a cluster coordinator's per-client
// token bucket denies a request; the client's budget refills with time.
// It aliases the cluster sentinel so errors.Is works across layers.
var ErrQuotaExceeded = cluster.ErrQuotaExceeded

// ErrNoReplica is returned when every replica serving some cell range
// has failed a query (connection failures or shard IO errors on all of
// them). The cluster never answers partially: exhausting a group is a
// typed failure, not a silently incomplete result.
var ErrNoReplica = cluster.ErrNoReplica

// NumCells returns the grid's cell count — the space a cluster's node
// cell ranges must tile exactly.
func (db *Database) NumCells() int { return db.ds.Index.NumCells() }

// ClusterNode is one serving member of a cluster: it answers partial
// searches for its assigned cell range over TCP. Close it on shutdown.
type ClusterNode struct {
	node *cluster.Node
}

// ServeClusterNode starts serving this database's index as one cluster
// node on ln, owning the cell range [cellLo, cellHi). When the database's
// posting store records a cell assignment in its MANIFEST (see
// RecordCellRange), that assignment is authoritative: pass zeros to adopt
// it, or matching bounds; contradicting it is an error. The node owns ln
// from here — ClusterNode.Close closes it.
//
// Becoming a node freezes the database's index: cluster serving is
// read-only (coordinators cache each node's term directory at startup),
// so Insert/Delete/Reweight fail from here on. Rebuild and restart to
// mutate.
func (db *Database) ServeClusterNode(ln net.Listener, cellLo, cellHi uint32) (*ClusterNode, error) {
	n, err := cluster.NewNode(cluster.NodeConfig{
		Index:   db.ds.Index,
		CellLo:  cellLo,
		CellHi:  cellHi,
		Objects: db.NumObjects(),
	})
	if err != nil {
		return nil, err
	}
	n.Serve(ln)
	return &ClusterNode{node: n}, nil
}

// Addr returns the node's listening address.
func (cn *ClusterNode) Addr() net.Addr { return cn.node.Addr() }

// CellRange returns the node's owned cell range [lo, hi).
func (cn *ClusterNode) CellRange() (lo, hi uint32) { return cn.node.CellRange() }

// Close stops the node: the listener and every connection are closed and
// in-flight handlers are waited for. Idempotent.
func (cn *ClusterNode) Close() error { return cn.node.Close() }

// RecordCellRange persists the cell assignment [lo, hi) into the posting
// store's MANIFEST (checksummed alongside the shard count), so a node
// process reopening the store serves the same cells it was built for
// without out-of-band configuration. It requires a disk-backed sharded
// store.
func (db *Database) RecordCellRange(lo, hi uint32) error {
	rec, ok := db.ds.Index.Store().(interface{ RecordCellRange(lo, hi uint32) error })
	if !ok {
		return fmt.Errorf("repro: RecordCellRange: the database's store does not persist cell assignments (need a sharded disk store)")
	}
	return rec.RecordCellRange(lo, hi)
}

// ClusterQuota configures per-client token-bucket admission at the
// coordinator: each client sustains RatePerSec requests with bursts up
// to Burst (<= 0 means max(1, RatePerSec)). A client that exhausts its
// bucket is answered ErrQuotaExceeded (HTTP 429) until it refills.
type ClusterQuota struct {
	RatePerSec float64
	Burst      float64
}

// ClusterOptions configures OpenCluster.
type ClusterOptions struct {
	// Nodes lists node addresses (host:port). Nodes reporting the same
	// cell range become replicas; the ranges together must tile the whole
	// grid or OpenCluster fails with a topology error.
	Nodes []string
	// Serve configures the coordinator's local worker pool (it still runs
	// the solvers; only the object search scatters). The admission queue
	// is always deadline-ordered (EDF) for cluster serving.
	Serve ServeOptions
	// Quota, when non-nil, enables per-client admission control.
	Quota *ClusterQuota
	// DialTimeout bounds each node connection attempt; <= 0 means 5s.
	DialTimeout time.Duration
	// RPCTimeout bounds node RPCs for requests without their own
	// deadline; <= 0 means 10s.
	RPCTimeout time.Duration
}

// Cluster is a coordinator over a set of node processes, presenting the
// same serving surface as a single-process Server: answers are
// bit-identical because the distributed search is an exact partition of
// the single-process one (see internal/cluster). The local database
// provides the road network and planner state; every object search
// scatters to the owning nodes and merges.
type Cluster struct {
	db    *Database
	coord *cluster.Coordinator
	srv   *Server
}

// OpenCluster connects to the given nodes, validates that they serve the
// same dataset and that their cell ranges tile the grid, and returns a
// Cluster serving queries through them. The database keeps its full local
// index for routing metadata and for restoring local serving on Close.
func (db *Database) OpenCluster(opts ClusterOptions) (*Cluster, error) {
	var quota *cluster.QuotaOptions
	if opts.Quota != nil {
		quota = &cluster.QuotaOptions{RatePerSec: opts.Quota.RatePerSec, Burst: opts.Quota.Burst}
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Addrs:       opts.Nodes,
		Index:       db.ds.Index,
		Objects:     db.NumObjects(),
		DialTimeout: opts.DialTimeout,
		RPCTimeout:  opts.RPCTimeout,
		Quota:       quota,
	})
	if err != nil {
		return nil, err
	}
	// Route every planner search through the coordinator from here on.
	// The scratch's trace (set when the request asked for EXPLAIN) rides
	// along so the coordinator can merge per-node fragments and its own
	// routing decisions into it.
	db.ds.SetSearchFunc(func(ctx context.Context, q textindex.Query, r geo.Rect, s *grid.SearchScratch) ([]grid.ObjScore, error) {
		return coord.SearchTrace(ctx, q, r, s.Trace)
	})
	serveOpts := opts.Serve
	serveOpts.DeadlineOrdered = true
	srv, err := db.Serve(serveOpts)
	if err != nil {
		db.ds.SetSearchFunc(nil)
		_ = coord.Close()
		return nil, err
	}
	return &Cluster{db: db, coord: coord, srv: srv}, nil
}

// Do answers one request through the cluster, with per-client quota
// admission when quotas are enabled: the client identity is taken from
// the context (httpapi.WithClientID; the HTTP front end sets it to the
// remote host). Requests without an identity share one bucket.
func (c *Cluster) Do(ctx context.Context, req Request) Response {
	if err := c.coord.Admit(httpapi.ClientID(ctx)); err != nil {
		return Response{Err: err}
	}
	return c.srv.Do(ctx, req)
}

// Submit is the single-result convenience form of Do, like Server.Submit.
func (c *Cluster) Submit(ctx context.Context, q Query) (*Result, error) {
	resp := c.Do(ctx, Request{Query: q})
	return resp.Best(), resp.Err
}

// HTTPHandler exposes the cluster over the same HTTP surface as
// Server.HTTPHandler, plus per-client quota admission (429 with
// Retry-After when a client outruns its bucket) and a cluster section in
// GET /stats aggregating coordinator routing counters and per-node RPC
// latencies.
func (c *Cluster) HTTPHandler(opts HTTPOptions) http.Handler {
	return httpapi.NewHandler(clusterBackend{c}, httpapi.Options{Timeout: opts.Timeout})
}

// ServeStats snapshots the coordinator-side worker pool counters.
func (c *Cluster) ServeStats() ServeStats { return c.srv.Stats() }

// ClusterNodeStats is the coordinator's view of one node connection.
// Latencies are RPC round-trips measured at the coordinator, network
// included.
type ClusterNodeStats struct {
	Addr           string
	CellLo, CellHi uint32
	Sent, Errors   int64
	P50, P95, P99  time.Duration
	Samples        int
}

// ClusterStats aggregates the whole cluster: the coordinator's routing
// decisions (skips by rectangle and by term directory, retries, replica
// exhaustion, quota denials) and one entry per node connection.
type ClusterStats struct {
	Searches    int64
	SkippedRect int64
	SkippedTerm int64
	Retries     int64
	NoReplica   int64
	QuotaDenied int64
	Groups      int
	Nodes       []ClusterNodeStats
}

// Stats snapshots the cluster-wide counters.
func (c *Cluster) Stats() ClusterStats {
	st := c.coord.Stats()
	out := ClusterStats{
		Searches:    st.Searches,
		SkippedRect: st.SkippedRect,
		SkippedTerm: st.SkippedTerm,
		Retries:     st.Retries,
		NoReplica:   st.NoReplica,
		QuotaDenied: st.QuotaDenied,
		Groups:      st.Groups,
	}
	for _, ns := range st.Nodes {
		out.Nodes = append(out.Nodes, ClusterNodeStats{
			Addr:    ns.Addr,
			CellLo:  ns.CellLo,
			CellHi:  ns.CellHi,
			Sent:    ns.Sent,
			Errors:  ns.Errors,
			P50:     ns.P50,
			P95:     ns.P95,
			P99:     ns.P99,
			Samples: ns.Samples,
		})
	}
	return out
}

// Close stops the serving pool, restores the database's local search
// path, and releases the node connections. The database itself stays
// open. Idempotent.
func (c *Cluster) Close() error {
	c.srv.Close()
	c.db.ds.SetSearchFunc(nil)
	return c.coord.Close()
}

// clusterBackend adapts a Cluster to the httpapi wire surface: quota
// admission before the solve, and the cluster stats fragment.
type clusterBackend struct {
	c *Cluster
}

// Query implements httpapi.Backend.
func (b clusterBackend) Query(ctx context.Context, req httpapi.QueryRequest) (httpapi.QueryResponse, error) {
	if err := b.c.coord.Admit(httpapi.ClientID(ctx)); err != nil {
		return httpapi.QueryResponse{}, err
	}
	return httpBackend{b.c.srv}.Query(ctx, req)
}

// Stats implements httpapi.Backend.
func (b clusterBackend) Stats() httpapi.Stats {
	out := httpBackend{b.c.srv}.Stats()
	st := b.c.coord.Stats()
	cs := &httpapi.ClusterStats{
		Searches:    st.Searches,
		SkippedRect: st.SkippedRect,
		SkippedTerm: st.SkippedTerm,
		Retries:     st.Retries,
		NoReplica:   st.NoReplica,
		QuotaDenied: st.QuotaDenied,
		Groups:      st.Groups,
	}
	for _, ns := range st.Nodes {
		cs.Nodes = append(cs.Nodes, httpapi.ClusterNodeStats{
			Addr:    ns.Addr,
			CellLo:  ns.CellLo,
			CellHi:  ns.CellHi,
			Sent:    ns.Sent,
			Errors:  ns.Errors,
			P50Ms:   httpapi.MillisOf(ns.P50),
			P95Ms:   httpapi.MillisOf(ns.P95),
			P99Ms:   httpapi.MillisOf(ns.P99),
			Samples: ns.Samples,
		})
	}
	out.Cluster = cs
	return out
}
