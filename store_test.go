package repro

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"
)

// TestShardedStoreGolden proves that a Database over a sharded disk store
// answers a parallel workload bit-identically to the in-memory store: the
// storage layout and the concurrent shard fan-out must never change a
// result.
func TestShardedStoreGolden(t *testing.T) {
	mem, err := NYLike(3, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NYLikeWithStore(3, 0.15, StoreConfig{
		Path:   filepath.Join(t.TempDir(), "store"),
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if st, ok := sharded.StoreStats(); !ok || st.Shards != 4 {
		t.Fatalf("StoreStats = %+v, %v; want 4 shards", st, ok)
	}
	if _, ok := mem.StoreStats(); ok {
		t.Fatal("in-memory database reported disk-store stats")
	}

	qs, err := mem.GenQueries(rand.New(rand.NewSource(7)), 24, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{MethodTGEN, MethodGreedy} {
		opts := SearchOptions{Method: method}
		want, _, err := mem.RunBatch(context.Background(), qs, opts, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sharded.RunBatch(context.Background(), qs, opts, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			switch {
			case want[i] == nil && got[i] == nil:
			case want[i] == nil || got[i] == nil:
				t.Fatalf("%v query %d: matched=%v on memory, %v on sharded",
					method, i, want[i] != nil, got[i] != nil)
			case want[i].Score != got[i].Score || want[i].Length != got[i].Length ||
				len(want[i].Nodes) != len(got[i].Nodes):
				t.Fatalf("%v query %d: memory (%v, %v, %d nodes) != sharded (%v, %v, %d nodes)",
					method, i, want[i].Score, want[i].Length, len(want[i].Nodes),
					got[i].Score, got[i].Length, len(got[i].Nodes))
			default:
				for j := range want[i].Nodes {
					if want[i].Nodes[j] != got[i].Nodes[j] {
						t.Fatalf("%v query %d node %d: %d != %d", method, i, j, want[i].Nodes[j], got[i].Nodes[j])
					}
				}
			}
		}
	}
}

// TestStoreConfigSingleTree covers the single-file compatibility layout.
func TestStoreConfigSingleTree(t *testing.T) {
	db, err := NYLikeWithStore(5, 0.1, StoreConfig{Path: filepath.Join(t.TempDir(), "p.bt"), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st, ok := db.StoreStats()
	if !ok || st.Shards != 1 {
		t.Fatalf("StoreStats = %+v, %v; want single shard", st, ok)
	}
	qs, err := db.GenQueries(rand.New(rand.NewSource(2)), 1, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Run(context.Background(), qs[0], SearchOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreConfigValidation(t *testing.T) {
	if _, err := NYLikeWithStore(1, 0.1, StoreConfig{Shards: 4}); err == nil {
		t.Fatal("sharded store without a path accepted")
	}
}
