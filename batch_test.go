package repro

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// TestRunBatchMatchesRun: the parallel batch path must return exactly what
// serial Run calls return, query by query, for every method.
func TestRunBatchMatchesRun(t *testing.T) {
	db, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	qs, err := db.GenQueries(rng, 10, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{MethodTGEN, MethodAPP, MethodGreedy} {
		opts := SearchOptions{Method: method}
		want := make([]*Result, len(qs))
		for i, q := range qs {
			r, err := db.Run(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("%v run %d: %v", method, i, err)
			}
			want[i] = r
		}
		for _, workers := range []int{1, 4} {
			got, stats, err := db.RunBatch(context.Background(), qs, opts, workers)
			if err != nil {
				t.Fatalf("%v batch workers=%d: %v", method, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: batch workers=%d differs from serial Run loop", method, workers)
			}
			wantMatched := 0
			for _, r := range want {
				if r != nil {
					wantMatched++
				}
			}
			if stats.Matched != wantMatched {
				t.Fatalf("%v: stats.Matched = %d, want %d", method, stats.Matched, wantMatched)
			}
		}
	}
}

func TestRunBatchValidation(t *testing.T) {
	db, err := NYLike(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.RunBatch(context.Background(), []Query{{Delta: 100}}, SearchOptions{}, 1); err == nil {
		t.Error("query without keywords accepted")
	}
	if _, _, err := db.RunBatch(context.Background(), []Query{{Keywords: []string{"a"}, Delta: -1}}, SearchOptions{}, 1); err == nil {
		t.Error("non-positive delta accepted")
	}
	res, stats, err := db.RunBatch(context.Background(), nil, SearchOptions{}, 0)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	if stats.Workers < 1 {
		t.Errorf("resolved workers = %d, want >= 1", stats.Workers)
	}
}
